/**
 * @file
 * Integration tests asserting the paper's headline result *shapes*:
 * who wins, in which direction, and (loosely) by how much. These are
 * the claims each figure of the evaluation section rests on.
 */

#include <gtest/gtest.h>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

CommEvalResult
commFor(PlatformKind platform, int meshN, int wafers, int tp,
        const MoEModelConfig &model, int tokens, int dgxNodes = 4)
{
    SystemConfig sc;
    sc.platform = platform;
    sc.meshN = meshN;
    sc.wafers = wafers;
    sc.tp = tp;
    sc.dgxNodes = dgxNodes;
    const System sys = System::make(sc);
    return evaluateCommunication(sys.mapping(), model, tokens, true);
}

} // namespace

// Fig. 13(b): unified WSC network beats DGX on total communication.
TEST(PaperShape, WscBeatsDgxOnCommunication)
{
    for (const auto &model : allModels()) {
        const auto dgx = commFor(PlatformKind::DgxCluster, 0, 1, 4,
                                 model, 256);
        const auto wsc = commFor(PlatformKind::WscBaseline, 6, 1, 4,
                                 model, 256);
        EXPECT_LT(wsc.total(), dgx.total()) << model.name;
    }
}

// Fig. 13(b): ER-Mapping cuts all-to-all latency on every model.
TEST(PaperShape, ErMappingCutsAllToAll)
{
    for (const auto &model : allModels()) {
        const auto base = commFor(PlatformKind::WscBaseline, 6, 1, 4,
                                  model, 256);
        const auto er =
            commFor(PlatformKind::WscEr, 6, 1, 4, model, 256);
        EXPECT_LT(er.allToAll(), base.allToAll()) << model.name;
    }
}

// Section IV-B: the all-to-all win outweighs the all-reduce penalty
// for many-expert models (DeepSeek-V3, Qwen3, DeepSeek-V2).
TEST(PaperShape, ErMappingNetWinOnManyExpertModels)
{
    for (const auto &model : {deepseekV3(), qwen3(), deepseekV2()}) {
        const auto base = commFor(PlatformKind::WscBaseline, 6, 1, 4,
                                  model, 256);
        const auto er =
            commFor(PlatformKind::WscEr, 6, 1, 4, model, 256);
        EXPECT_LT(er.total(), base.total()) << model.name;
        EXPECT_GT(er.allReduce, base.allReduce) << model.name;
    }
}

// Fig. 13(a): the WSC advantage grows with the token count.
TEST(PaperShape, WscAdvantageGrowsWithTokens)
{
    const auto model = qwen3();
    auto advantage = [&](int tokens) {
        const auto dgx = commFor(PlatformKind::DgxCluster, 0, 1, 4,
                                 model, tokens);
        const auto wsc = commFor(PlatformKind::WscBaseline, 6, 1, 4,
                                 model, tokens);
        return dgx.total() / wsc.total();
    };
    EXPECT_GT(advantage(4096), advantage(16));
}

// Fig. 13(d): HER-Mapping beats flat ER on multi-wafer systems.
TEST(PaperShape, HerBeatsErOnMultiWafer)
{
    const auto model = qwen3();
    const auto er = commFor(PlatformKind::WscEr, 4, 4, 4, model, 256);
    const auto her = commFor(PlatformKind::WscHer, 4, 4, 4, model, 256);
    EXPECT_LT(her.allReduce, er.allReduce);
    EXPECT_LT(her.total(), er.total());
}

// Fig. 14(b): retaining the all-gather costs ~2× all-reduce but pays
// for itself in all-to-all reduction.
TEST(PaperShape, RetainingAllGatherIsNetWin)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 6;
    sc.tp = 4;
    const System sys = System::make(sc);
    const auto model = deepseekV3();
    const auto with =
        evaluateCommunication(sys.mapping(), model, 256, true);
    const auto without =
        evaluateCommunication(sys.mapping(), model, 256, false);
    EXPECT_GT(with.allReduce, without.allReduce);
    EXPECT_LT(with.allToAll(), without.allToAll());
    EXPECT_LT(with.total(), without.total());
}

// Fig. 6: all-to-all dwarfs all-reduce on WSCs, and the gap widens
// with scale.
TEST(PaperShape, AllToAllDominatesAndScales)
{
    const auto model = deepseekV3();
    const auto small = commFor(PlatformKind::WscBaseline, 4, 1, 4,
                               model, 256);
    const auto large = commFor(PlatformKind::WscBaseline, 8, 1, 4,
                               model, 256);
    EXPECT_GT(small.allToAll(), small.allReduce);
    EXPECT_GT(large.allToAll(), large.allReduce);
    EXPECT_GT(large.allToAll() / large.allReduce,
              small.allToAll() / small.allReduce);
}

// Fig. 4: larger EP cuts the per-device weight-streaming share. Each
// device serves its own decode batch, so per-device routed tokens stay
// constant while resident experts shrink as E/D falls.
TEST(PaperShape, LargerEpReducesMemoryShare)
{
    const CostModel cost;
    const auto model = deepseekV3();
    const double tokensPerDevice = 256.0 * model.expertsActivated;
    auto memoryShare = [&](int ep) {
        const double expertsPerDevice =
            double(model.expertsTotal) / ep;
        const auto c =
            cost.moeDevice(model, tokensPerDevice, expertsPerDevice);
        return c.memoryTime / c.total();
    };
    EXPECT_GT(memoryShare(8), memoryShare(72));
    EXPECT_GT(memoryShare(72), memoryShare(256));
}

// Fig. 4: per-device MoE throughput improves monotonically with EP.
TEST(PaperShape, PerDevicePerformanceImprovesWithEp)
{
    const CostModel cost;
    const auto model = deepseekV3();
    const double tokensPerDevice = 256.0 * model.expertsActivated;
    auto perDeviceTime = [&](int ep) {
        const auto c = cost.moeDevice(
            model, tokensPerDevice, double(model.expertsTotal) / ep);
        return c.total(); // same token work per device in all configs
    };
    EXPECT_GT(perDeviceTime(8), perDeviceTime(32));
    EXPECT_GT(perDeviceTime(32), perDeviceTime(72));
    EXPECT_GT(perDeviceTime(72), perDeviceTime(256));
}

// Fig. 15/16: against the same workload, the NI-Balancer achieves the
// topology-aware balance without any exposed migration time, while the
// greedy balancer pays for interruptions.
TEST(PaperShape, NiBalancerWinsOverGreedy)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);

    EngineConfig ec;
    ec.model = qwen3();
    ec.schedule = SchedulingMode::PrefillOnly;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.alpha = 0.5;
    ec.beta = 5;

    // Compare the MoE-side latency (expert execution overlapped with
    // all-to-all, plus any exposed migration) — the components Fig. 16
    // reports.
    auto meanMoeTime = [&](BalancerKind kind) {
        EngineConfig cfg = ec;
        cfg.balancer = kind;
        InferenceEngine engine(sys.mapping(), cfg);
        const auto trace = engine.run(60);
        double total = 0.0;
        for (std::size_t i = trace.size() / 2; i < trace.size(); ++i)
            total += trace[i].moePhase(cfg.pipelineStages) +
                trace[i].migrationOverhead;
        return total / (trace.size() - trace.size() / 2);
    };

    const double greedy = meanMoeTime(BalancerKind::Greedy);
    const double ni = meanMoeTime(BalancerKind::NonInvasive);
    const double none = meanMoeTime(BalancerKind::None);
    EXPECT_LT(ni, greedy);
    EXPECT_LT(ni, none);
}

// Fig. 17: a multi-wafer WSC with full MoEntwine beats NVL72 on
// per-device MoE time thanks to EP=256 vs EP=72.
TEST(PaperShape, MoEntwineWscBeatsNvl72)
{
    EngineConfig ec;
    ec.model = deepseekV3();
    ec.decodeTokensPerGroup = 64;
    ec.workload.mode = GatingMode::SingleScenario;
    ec.workload.scenario = ScenarioKind::Math;
    ec.balancer = BalancerKind::NonInvasive;
    ec.alpha = 0.5;

    SystemConfig nvlCfg;
    nvlCfg.platform = PlatformKind::Nvl72;
    nvlCfg.tp = 4;
    const System nvl = System::make(nvlCfg);
    InferenceEngine nvlEngine(nvl.mapping(), ec);

    SystemConfig wscCfg;
    wscCfg.platform = PlatformKind::WscHer;
    wscCfg.meshN = 8;
    wscCfg.wafers = 4;
    wscCfg.tp = 16;
    const System wsc = System::make(wscCfg);
    InferenceEngine wscEngine(wsc.mapping(), ec);

    auto tailMoe = [&](InferenceEngine &e) {
        const auto trace = e.run(30);
        double total = 0.0;
        for (std::size_t i = 15; i < trace.size(); ++i)
            total += trace[i].moeTime + trace[i].allToAll();
        return total / 15.0;
    };
    // Same total batch work; the WSC spreads it over 256 devices with
    // E/D = 1 while NVL72 is stuck at E/D ≈ 3.6.
    EXPECT_LT(tailMoe(wscEngine), tailMoe(nvlEngine));
}
