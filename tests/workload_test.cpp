/**
 * @file
 * Tests for the scenario-conditioned workload generator.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "workload/scenario.hh"
#include "workload/workload.hh"

using namespace moentwine;

// ------------------------------------------------------- scenarios ----

TEST(Scenario, NamesAndOrder)
{
    const auto all = allScenarios();
    ASSERT_EQ(all.size(), 4u);
    EXPECT_EQ(scenarioName(all[0]), "Chat");
    EXPECT_EQ(scenarioName(all[1]), "Coding");
    EXPECT_EQ(scenarioName(all[2]), "Math");
    EXPECT_EQ(scenarioName(all[3]), "Privacy");
}

TEST(Scenario, AffinityIsDeterministic)
{
    const auto a = scenarioAffinity(ScenarioKind::Math, 3, 64, 1.0, 42);
    const auto b = scenarioAffinity(ScenarioKind::Math, 3, 64, 1.0, 42);
    EXPECT_EQ(a, b);
}

TEST(Scenario, DifferentScenariosDiffer)
{
    const auto a = scenarioAffinity(ScenarioKind::Math, 0, 64, 1.0, 42);
    const auto b = scenarioAffinity(ScenarioKind::Chat, 0, 64, 1.0, 42);
    EXPECT_NE(a, b);
}

TEST(Scenario, DifferentLayersDiffer)
{
    const auto a = scenarioAffinity(ScenarioKind::Math, 0, 64, 1.0, 42);
    const auto b = scenarioAffinity(ScenarioKind::Math, 1, 64, 1.0, 42);
    EXPECT_NE(a, b);
}

TEST(Scenario, ZipfZeroIsUniform)
{
    const auto w = scenarioAffinity(ScenarioKind::Chat, 0, 16, 0.0, 1);
    for (const double x : w)
        EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(Scenario, ZipfSkewsWeights)
{
    const auto w = scenarioAffinity(ScenarioKind::Chat, 0, 64, 1.2, 1);
    const double maxW = *std::max_element(w.begin(), w.end());
    const double minW = *std::min_element(w.begin(), w.end());
    EXPECT_GT(maxW / minW, 10.0);
}

// ---------------------------------------------------- multinomial ----

TEST(Multinomial, CountsSumToDraws)
{
    Rng rng(5);
    const auto counts = sampleMultinomial(rng, {1.0, 2.0, 3.0}, 600);
    EXPECT_EQ(std::accumulate(counts.begin(), counts.end(), 0), 600);
}

TEST(Multinomial, ZeroWeightNeverSampled)
{
    Rng rng(6);
    const auto counts =
        sampleMultinomial(rng, {1.0, 0.0, 1.0}, 10000);
    EXPECT_EQ(counts[1], 0);
}

TEST(Multinomial, ProportionsConverge)
{
    Rng rng(7);
    const auto counts = sampleMultinomial(rng, {1.0, 3.0}, 100000);
    EXPECT_NEAR(counts[1] / 100000.0, 0.75, 0.01);
}

TEST(Multinomial, ZeroDraws)
{
    Rng rng(8);
    const auto counts = sampleMultinomial(rng, {1.0, 1.0}, 0);
    EXPECT_EQ(counts[0] + counts[1], 0);
}

// ------------------------------------------------------ generator ----

TEST(Workload, BalancedAffinityIsUniform)
{
    WorkloadConfig cfg;
    cfg.numExperts = 32;
    cfg.mode = GatingMode::Balanced;
    const WorkloadGenerator gen(cfg);
    const auto aff = gen.affinity(0, 0);
    for (const double a : aff)
        EXPECT_NEAR(a, 1.0 / 32.0, 1e-12);
}

TEST(Workload, AffinityIsNormalised)
{
    WorkloadConfig cfg;
    cfg.numExperts = 64;
    cfg.mode = GatingMode::MixedScenario;
    const WorkloadGenerator gen(cfg);
    const auto aff = gen.affinity(100, 0);
    EXPECT_NEAR(std::accumulate(aff.begin(), aff.end(), 0.0), 1.0,
                1e-9);
}

TEST(Workload, SingleScenarioAffinityIsStationary)
{
    WorkloadConfig cfg;
    cfg.numExperts = 64;
    cfg.mode = GatingMode::SingleScenario;
    cfg.scenario = ScenarioKind::Math;
    const WorkloadGenerator gen(cfg);
    EXPECT_EQ(gen.affinity(0, 0), gen.affinity(500, 0));
}

TEST(Workload, MixedScenarioAffinityDrifts)
{
    WorkloadConfig cfg;
    cfg.numExperts = 64;
    cfg.mode = GatingMode::MixedScenario;
    cfg.mixPeriod = 400;
    const WorkloadGenerator gen(cfg);
    const auto a = gen.affinity(0, 0);
    const auto b = gen.affinity(200, 0); // half a period later
    double delta = 0.0;
    for (std::size_t e = 0; e < a.size(); ++e)
        delta += std::abs(a[e] - b[e]);
    EXPECT_GT(delta, 0.05);
}

TEST(Workload, MixedScenarioIsCyclic)
{
    WorkloadConfig cfg;
    cfg.numExperts = 64;
    cfg.mode = GatingMode::MixedScenario;
    cfg.mixPeriod = 100;
    const WorkloadGenerator gen(cfg);
    const auto a = gen.affinity(0, 0);
    const auto b = gen.affinity(100, 0);
    for (std::size_t e = 0; e < a.size(); ++e)
        EXPECT_NEAR(a[e], b[e], 1e-9);
}

TEST(Workload, SampleCountsShape)
{
    WorkloadConfig cfg;
    cfg.numExperts = 32;
    cfg.topK = 4;
    WorkloadGenerator gen(cfg);
    const auto counts = gen.sampleCounts(0, 0, 100, 8);
    ASSERT_EQ(counts.size(), 8u);
    for (const auto &row : counts) {
        ASSERT_EQ(row.size(), 32u);
        EXPECT_EQ(std::accumulate(row.begin(), row.end(), 0), 400);
    }
}

TEST(Workload, SameSeedSameTrace)
{
    WorkloadConfig cfg;
    cfg.numExperts = 16;
    cfg.seed = 99;
    WorkloadGenerator a(cfg);
    WorkloadGenerator b(cfg);
    EXPECT_EQ(a.sampleCounts(0, 0, 64, 4), b.sampleCounts(0, 0, 64, 4));
}

TEST(Workload, ExpertLoadsAggregatesColumns)
{
    const std::vector<std::vector<int>> counts{{1, 2, 3}, {4, 5, 6}};
    const auto loads = WorkloadGenerator::expertLoads(counts, 3);
    EXPECT_DOUBLE_EQ(loads[0], 5.0);
    EXPECT_DOUBLE_EQ(loads[1], 7.0);
    EXPECT_DOUBLE_EQ(loads[2], 9.0);
}

TEST(Workload, SkewedScenarioLoadsAreImbalanced)
{
    WorkloadConfig cfg;
    cfg.numExperts = 128;
    cfg.topK = 8;
    cfg.mode = GatingMode::SingleScenario;
    cfg.zipf = 1.0;
    WorkloadGenerator gen(cfg);
    const auto counts = gen.sampleCounts(0, 0, 256, 8);
    const auto loads = WorkloadGenerator::expertLoads(counts, 128);
    const double mean =
        std::accumulate(loads.begin(), loads.end(), 0.0) / 128.0;
    const double peak = *std::max_element(loads.begin(), loads.end());
    EXPECT_GT(peak / mean, 2.0); // strongly skewed (Fig. 12)
}

TEST(Workload, BalancedLoadsAreFlat)
{
    WorkloadConfig cfg;
    cfg.numExperts = 128;
    cfg.topK = 8;
    cfg.mode = GatingMode::Balanced;
    WorkloadGenerator gen(cfg);
    const auto counts = gen.sampleCounts(0, 0, 2048, 8);
    const auto loads = WorkloadGenerator::expertLoads(counts, 128);
    const double mean =
        std::accumulate(loads.begin(), loads.end(), 0.0) / 128.0;
    const double peak = *std::max_element(loads.begin(), loads.end());
    EXPECT_LT(peak / mean, 1.3); // only multinomial noise
}
