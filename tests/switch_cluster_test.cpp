/**
 * @file
 * Unit tests for the switch-based GPU-cluster topologies (DGX, NVL72).
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "topology/switch_cluster.hh"

using namespace moentwine;

TEST(SwitchCluster, DgxDeviceCount)
{
    const auto dgx = SwitchClusterTopology::dgx(4);
    EXPECT_EQ(dgx.numDevices(), 32);
    // 32 devices + 4 node switches + 1 spine.
    EXPECT_EQ(dgx.numNodes(), 37);
}

TEST(SwitchCluster, Nvl72DeviceCount)
{
    const auto nvl = SwitchClusterTopology::nvl72();
    EXPECT_EQ(nvl.numDevices(), 72);
    // 72 devices + 1 switch, no spine.
    EXPECT_EQ(nvl.numNodes(), 73);
}

TEST(SwitchCluster, NodeOfPartition)
{
    const auto dgx = SwitchClusterTopology::dgx(2);
    EXPECT_EQ(dgx.nodeOf(0), 0);
    EXPECT_EQ(dgx.nodeOf(7), 0);
    EXPECT_EQ(dgx.nodeOf(8), 1);
    EXPECT_EQ(dgx.nodeOf(15), 1);
}

TEST(SwitchCluster, SameNodePredicate)
{
    const auto dgx = SwitchClusterTopology::dgx(2);
    EXPECT_TRUE(dgx.sameNode(0, 7));
    EXPECT_FALSE(dgx.sameNode(7, 8));
}

TEST(SwitchCluster, IntraNodeRouteIsTwoHops)
{
    const auto dgx = SwitchClusterTopology::dgx(2);
    EXPECT_EQ(dgx.hops(0, 1), 2); // device → switch → device
}

TEST(SwitchCluster, InterNodeRouteIsFourHops)
{
    const auto dgx = SwitchClusterTopology::dgx(2);
    EXPECT_EQ(dgx.hops(0, 8), 4); // device → sw → spine → sw → device
}

TEST(SwitchCluster, SelfRouteIsEmpty)
{
    const auto dgx = SwitchClusterTopology::dgx(2);
    EXPECT_EQ(dgx.hops(3, 3), 0);
}

TEST(SwitchCluster, RouteIsConnected)
{
    const auto dgx = SwitchClusterTopology::dgx(3);
    for (DeviceId a = 0; a < dgx.numDevices(); a += 5) {
        for (DeviceId b = 0; b < dgx.numDevices(); b += 7) {
            NodeId cur = a;
            for (const LinkId l : dgx.route(a, b)) {
                const Link &link = dgx.links()[std::size_t(l)];
                EXPECT_EQ(link.src, cur);
                cur = link.dst;
            }
            EXPECT_EQ(cur, b);
        }
    }
}

TEST(SwitchCluster, Nvl72AlwaysTwoHops)
{
    const auto nvl = SwitchClusterTopology::nvl72();
    for (DeviceId a = 0; a < nvl.numDevices(); a += 9)
        for (DeviceId b = 0; b < nvl.numDevices(); b += 11)
            if (a != b)
                EXPECT_EQ(nvl.hops(a, b), 2);
}

TEST(SwitchCluster, InterNodePathIsSlower)
{
    const auto dgx = SwitchClusterTopology::dgx(2);
    EXPECT_LT(dgx.pathBandwidth(0, 8), dgx.pathBandwidth(0, 1));
    EXPECT_GT(dgx.pathLatency(0, 8), dgx.pathLatency(0, 1));
}

TEST(SwitchCluster, IntraBandwidthMatchesNvlink)
{
    const auto dgx = SwitchClusterTopology::dgx(1);
    EXPECT_DOUBLE_EQ(dgx.pathBandwidth(0, 1), 0.9 * units::TB);
}

TEST(SwitchCluster, InterBandwidthMatchesIb)
{
    const auto dgx = SwitchClusterTopology::dgx(2);
    EXPECT_DOUBLE_EQ(dgx.pathBandwidth(0, 8), 0.4 * units::TB);
}

TEST(SwitchCluster, Names)
{
    EXPECT_EQ(SwitchClusterTopology::nvl72().name(), "NVL72");
    EXPECT_EQ(SwitchClusterTopology::dgx(4).name(),
              "4-node DGX (32 GPUs)");
}

TEST(SwitchCluster, SingleNodeHasNoSpineLinks)
{
    const auto nvl = SwitchClusterTopology::nvl72();
    // 72 devices × 2 directions, nothing else.
    EXPECT_EQ(nvl.links().size(), std::size_t(144));
}

TEST(SwitchCluster, MultiNodeLinkCount)
{
    const auto dgx = SwitchClusterTopology::dgx(4);
    // 32 devices × 2 + 4 node switches × 2.
    EXPECT_EQ(dgx.links().size(), std::size_t(64 + 8));
}
