/**
 * @file
 * Tests for the fault-injection layer (src/fault/):
 *  - plan validation rejects malformed event streams loudly;
 *  - the degraded-topology property: after any link failures, no
 *    computed route traverses a failed link, every reachable pair gets
 *    a connected min-hop path, and unreachable pairs are reported
 *    (never silently mis-routed);
 *  - degrade/restore exactness: restored links return to their
 *    bitwise-original bandwidth, degrade-only overlays keep base paths;
 *  - injector semantics: ordered idempotent advance, monotone device
 *    loss, straggler factors;
 *  - placement re-homing invariants under markDeviceLost();
 *  - the empty-plan equivalence contract: an attached empty plan (and
 *    a non-empty plan whose events lie beyond the run) is bitwise
 *    identical to an unattached run, for both the engine and the
 *    serving simulator;
 *  - degraded serving: node loss under load produces retries/shedding,
 *    per-event attribution windows partition the run, and fault runs
 *    are deterministic end to end.
 */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "core/moentwine.hh"
#include "fault/fault.hh"
#include "serve/serve_sim.hh"

using namespace moentwine;

namespace {

/** Small WSC platform shared by the serving-level tests. */
SystemConfig
smallWsc()
{
    SystemConfig wsc;
    wsc.platform = PlatformKind::WscEr;
    wsc.meshN = 4;
    wsc.tp = 4;
    return wsc;
}

/** Serving config with a saturating arrival burst (fault-laden). */
ServeConfig
loadedServeConfig(int requests)
{
    ServeConfig sc;
    sc.engine.model = qwen3();
    sc.engine.workload.seed = 99;
    sc.arrival.kind = ArrivalKind::Poisson;
    sc.arrival.ratePerSec = 200.0;
    sc.arrival.promptMeanTokens = 256;
    sc.arrival.promptMaxTokens = 2048;
    sc.arrival.outputMeanTokens = 48;
    sc.arrival.outputMaxTokens = 256;
    sc.arrival.seed = 4242;
    sc.scheduler.kvBudgetTokens = 16384;
    sc.scheduler.maxRunningRequests = 32;
    sc.numRequests = requests;
    return sc;
}

/** EXPECT_EQ over every timeline field of two iteration stats. */
void
expectIdenticalStats(const IterationStats &a, const IterationStats &b)
{
    EXPECT_EQ(a.attnCompute, b.attnCompute);
    EXPECT_EQ(a.allReduce, b.allReduce);
    EXPECT_EQ(a.dispatch, b.dispatch);
    EXPECT_EQ(a.combine, b.combine);
    EXPECT_EQ(a.moeTime, b.moeTime);
    EXPECT_EQ(a.migrationOverhead, b.migrationOverhead);
    EXPECT_EQ(a.faultRecoveryTime, b.faultRecoveryTime);
    EXPECT_EQ(a.loadMax, b.loadMax);
    EXPECT_EQ(a.loadAvg, b.loadAvg);
    EXPECT_EQ(a.imbalance, b.imbalance);
}

} // namespace

TEST(FaultPlanTest, ValidateRejectsMalformedPlans)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);

    FaultPlan negative;
    negative.events.push_back(FaultEvent::slowNode(-1, 0, 2.0));
    EXPECT_EXIT(negative.validate(mesh),
                ::testing::ExitedWithCode(1), "negative iteration");

    FaultPlan unsorted;
    unsorted.events.push_back(FaultEvent::linkFail(10, 0));
    unsorted.events.push_back(FaultEvent::linkRestore(5, 0));
    EXPECT_EXIT(unsorted.validate(mesh),
                ::testing::ExitedWithCode(1), "");

    FaultPlan badFactor;
    badFactor.events.push_back(FaultEvent::linkDegrade(0, 0, 1.5));
    EXPECT_EXIT(badFactor.validate(mesh),
                ::testing::ExitedWithCode(1), "");

    FaultPlan badLink;
    badLink.events.push_back(FaultEvent::linkFail(
        0, static_cast<int>(mesh.links().size())));
    EXPECT_EXIT(badLink.validate(mesh),
                ::testing::ExitedWithCode(1), "");

    FaultPlan good;
    good.events.push_back(FaultEvent::linkDegrade(0, 0, 0.5));
    good.events.push_back(FaultEvent::slowNode(0, 3, 2.0));
    good.events.push_back(FaultEvent::linkRestore(7, 0));
    good.validate(mesh); // must not exit
}

TEST(FaultTopologyTest, NoRouteTraversesAFailedLink)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    FaultTopology ft(mesh);

    // Cut an asymmetric set of links (both directions of some, one
    // direction of others) so reroutes are non-trivial.
    std::set<LinkId> cut;
    const auto cutBetween = [&](NodeId a, NodeId b, bool both) {
        cut.insert(mesh.linkBetween(a, b));
        if (both)
            cut.insert(mesh.linkBetween(b, a));
    };
    cutBetween(5, 6, true);
    cutBetween(9, 10, true);
    cutBetween(1, 2, false);
    cutBetween(13, 14, true);
    for (const LinkId l : cut)
        ft.failLink(l);
    ft.rebuildAfterFaults();

    const auto &links = ft.links();
    for (DeviceId s = 0; s < ft.numDevices(); ++s) {
        for (DeviceId d = 0; d < ft.numDevices(); ++d) {
            if (s == d)
                continue;
            const std::vector<LinkId> path = ft.computeRoute(s, d);
            if (!ft.reachable(s, d)) {
                EXPECT_TRUE(path.empty());
                continue;
            }
            ASSERT_FALSE(path.empty());
            // Connected chain s → d over live links only.
            NodeId at = s;
            for (const LinkId l : path) {
                EXPECT_FALSE(ft.linkFailed(l))
                    << "route " << s << "->" << d
                    << " uses failed link " << l;
                EXPECT_EQ(links[static_cast<std::size_t>(l)].src, at);
                at = links[static_cast<std::size_t>(l)].dst;
            }
            EXPECT_EQ(at, d);
        }
    }
}

TEST(FaultTopologyTest, DegradeScalesAndRestoreIsBitwiseExact)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    FaultTopology ft(mesh);
    const LinkId l = mesh.linkBetween(5, 6);
    const double nameplate =
        mesh.links()[static_cast<std::size_t>(l)].bandwidth;

    ft.degradeLink(l, 0.25);
    ft.rebuildAfterFaults();
    EXPECT_EQ(ft.links()[static_cast<std::size_t>(l)].bandwidth,
              nameplate * 0.25);
    // Degrade-only: routing delegates to the base paths exactly.
    for (DeviceId s = 0; s < ft.numDevices(); s += 3) {
        for (DeviceId d = 0; d < ft.numDevices(); d += 5) {
            if (s == d)
                continue;
            const auto base = mesh.computeRoute(s, d);
            const auto over = ft.computeRoute(s, d);
            EXPECT_EQ(base, over);
        }
    }

    ft.failLink(l);
    ft.rebuildAfterFaults();
    EXPECT_EQ(ft.links()[static_cast<std::size_t>(l)].bandwidth,
              FaultTopology::kFailedLinkBandwidth);
    EXPECT_TRUE(ft.linkFailed(l));

    ft.restoreLink(l);
    ft.rebuildAfterFaults();
    EXPECT_EQ(ft.links()[static_cast<std::size_t>(l)].bandwidth,
              nameplate);
    EXPECT_FALSE(ft.linkFailed(l));
    EXPECT_EQ(ft.failedLinkCount(), 0);
    EXPECT_TRUE(ft.isolatedDevices().empty());
}

TEST(FaultTopologyTest, FullyCutDeviceIsIsolated)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    FaultTopology ft(mesh);
    // Corner device 0 touches neighbours 1 and 4 only.
    for (const NodeId n : {1, 4}) {
        ft.failLink(mesh.linkBetween(0, n));
        ft.failLink(mesh.linkBetween(n, 0));
    }
    ft.rebuildAfterFaults();

    ASSERT_EQ(ft.isolatedDevices().size(), 1u);
    EXPECT_EQ(ft.isolatedDevices()[0], 0);
    EXPECT_FALSE(ft.reachable(0, 5));
    EXPECT_FALSE(ft.reachable(5, 0));
    EXPECT_TRUE(ft.reachable(5, 10));
    EXPECT_TRUE(ft.computeRoute(0, 5).empty());
}

TEST(FaultInjectorTest, AdvanceIsOrderedAndIdempotent)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    FaultPlan plan;
    plan.events.push_back(FaultEvent::slowNode(5, 3, 2.0));
    plan.events.push_back(
        FaultEvent::linkFail(10, mesh.linkBetween(5, 6)));
    plan.events.push_back(FaultEvent::slowNode(10, 3, 1.0));
    FaultInjector inj(mesh, plan);

    EXPECT_EQ(inj.advanceTo(4), 0);
    EXPECT_EQ(&inj.topology(), &mesh); // no link event yet
    EXPECT_EQ(inj.computeFactor(3), 1.0);

    EXPECT_EQ(inj.advanceTo(5), 1);
    EXPECT_EQ(inj.advanceTo(5), 0); // idempotent
    EXPECT_EQ(inj.computeFactor(3), 2.0);
    EXPECT_EQ(inj.maxLiveComputeFactor(), 2.0);
    EXPECT_EQ(inj.topologyEpoch(), 0);

    EXPECT_EQ(inj.advanceTo(12), 2); // both iteration-10 events
    EXPECT_EQ(inj.computeFactor(3), 1.0);
    EXPECT_EQ(inj.topologyEpoch(), 1);
    EXPECT_NE(&inj.topology(), &mesh);
    EXPECT_EQ(inj.appliedEvents(), 3);
    EXPECT_TRUE(inj.reachable(5, 6)); // rerouted, not disconnected
}

TEST(FaultInjectorTest, DeviceLossIsMonotone)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    FaultPlan plan;
    plan.events.push_back(FaultEvent::nodeFail(2, 7));
    // Later restores never resurrect the device.
    plan.events.push_back(
        FaultEvent::linkDegrade(4, mesh.linkBetween(0, 1), 0.5));
    plan.events.push_back(
        FaultEvent::linkRestore(6, mesh.linkBetween(0, 1)));
    FaultInjector inj(mesh, plan);

    inj.advanceTo(3);
    EXPECT_TRUE(inj.deviceLost(7));
    EXPECT_EQ(inj.liveDeviceCount(), mesh.numDevices() - 1);
    ASSERT_EQ(inj.lostDevices().size(), 1u);
    EXPECT_EQ(inj.lostDevices()[0], 7);

    inj.advanceTo(100);
    EXPECT_TRUE(inj.deviceLost(7));
    EXPECT_EQ(inj.lostDevices().size(), 1u);
    EXPECT_DOUBLE_EQ(inj.liveFraction(), 15.0 / 16.0);
}

TEST(FaultPlacementTest, MarkDeviceLostRehomesDeterministically)
{
    ExpertPlacement p(16, 8, 1);
    const DeviceId dead = 3; // natively hosts experts 3 and 11
    const auto rehomed = p.markDeviceLost(dead);

    ASSERT_EQ(rehomed.size(), 2u);
    EXPECT_EQ(rehomed[0].expert, 3);
    EXPECT_EQ(rehomed[1].expert, 11);
    for (const ExpertRehoming &r : rehomed) {
        EXPECT_EQ(r.from, dead);
        EXPECT_NE(r.to, dead);
        EXPECT_TRUE(p.hosts(r.to, r.expert));
        EXPECT_TRUE(p.isNative(r.to, r.expert));
        // Native re-homes ride a capacity bump: shadow headroom of the
        // target is untouched.
        EXPECT_EQ(p.freeSlots(r.to), p.shadowSlots());
    }
    EXPECT_TRUE(p.deviceLost(dead));
    EXPECT_TRUE(p.expertsOn(dead).empty());
    EXPECT_EQ(p.freeSlots(dead), 0);

    // Idempotent; and resetToNative() keeps the device drained.
    EXPECT_TRUE(p.markDeviceLost(dead).empty());
    p.resetToNative();
    EXPECT_TRUE(p.expertsOn(dead).empty());
    for (int e = 0; e < 16; ++e)
        EXPECT_GE(p.numReplicas(e), 1);

    // Same starting state, same deterministic targets.
    ExpertPlacement q(16, 8, 1);
    const auto again = q.markDeviceLost(dead);
    ASSERT_EQ(again.size(), rehomed.size());
    for (std::size_t i = 0; i < again.size(); ++i) {
        EXPECT_EQ(again[i].expert, rehomed[i].expert);
        EXPECT_EQ(again[i].to, rehomed[i].to);
    }
}

TEST(EngineFaultTest, EmptyAndDormantPlansAreBitwiseIdentical)
{
    const System sys = System::make(smallWsc());
    EngineConfig ec;
    ec.model = qwen3();
    ec.decodeTokensPerGroup = 64;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.workload.seed = 7;
    ec.balancer = BalancerKind::NonInvasive;

    InferenceEngine plain(sys.mapping(), ec);
    const auto reference = plain.run(12);

    // Empty plan: attachFaults() detaches entirely.
    InferenceEngine withEmpty(sys.mapping(), ec);
    FaultInjector empty(sys.mapping().topology(), FaultPlan{});
    withEmpty.attachFaults(&empty);
    const auto emptyRun = withEmpty.run(12);

    // Dormant plan: events exist but fire beyond the run; the attached
    // fast path must still multiply by exactly 1.0 / route identically.
    FaultPlan dormant;
    dormant.events.push_back(FaultEvent::slowNode(1000, 0, 2.0));
    FaultInjector sleeping(sys.mapping().topology(), dormant);
    InferenceEngine withDormant(sys.mapping(), ec);
    withDormant.attachFaults(&sleeping);
    const auto dormantRun = withDormant.run(12);

    ASSERT_EQ(reference.size(), emptyRun.size());
    ASSERT_EQ(reference.size(), dormantRun.size());
    for (std::size_t i = 0; i < reference.size(); ++i) {
        expectIdenticalStats(reference[i], emptyRun[i]);
        expectIdenticalStats(reference[i], dormantRun[i]);
    }
}

TEST(EngineFaultTest, StragglerScalesComputeExactly)
{
    const System sys = System::make(smallWsc());
    EngineConfig ec;
    ec.model = qwen3();
    ec.decodeTokensPerGroup = 64;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.workload.seed = 7;

    InferenceEngine plain(sys.mapping(), ec);
    const IterationStats base = plain.step();

    FaultPlan plan;
    plan.events.push_back(FaultEvent::slowNode(0, 0, 2.0));
    FaultInjector inj(sys.mapping().topology(), plan);
    InferenceEngine slowed(sys.mapping(), ec);
    slowed.attachFaults(&inj);
    const IterationStats hit = slowed.step();

    // Attention runs in TP lockstep: the slowest device sets the pace.
    EXPECT_EQ(hit.attnCompute, base.attnCompute * 2.0);
    EXPECT_EQ(hit.faultEventsApplied, 1);
    // Same RNG stream, same routing: communication is untouched.
    EXPECT_EQ(hit.allReduce, base.allReduce);
    EXPECT_EQ(hit.dispatch, base.dispatch);
    EXPECT_GE(hit.moeTime, base.moeTime);
}

TEST(EngineFaultTest, NodeLossChargesRecoveryAndDrainsDevice)
{
    const System sys = System::make(smallWsc());
    EngineConfig ec;
    ec.model = qwen3();
    ec.decodeTokensPerGroup = 64;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.workload.seed = 7;

    FaultPlan plan;
    plan.events.push_back(FaultEvent::nodeFail(3, 5));
    FaultInjector inj(sys.mapping().topology(), plan);
    InferenceEngine engine(sys.mapping(), ec);
    engine.attachFaults(&inj);

    const auto run = engine.run(6);
    EXPECT_EQ(run[2].faultRecoveryTime, 0.0);
    EXPECT_EQ(run[3].faultEventsApplied, 1);
    EXPECT_GT(run[3].faultRecoveryTime, 0.0);
    EXPECT_EQ(run[4].faultRecoveryTime, 0.0); // one-time charge
    EXPECT_TRUE(engine.placement().deviceLost(5));
    EXPECT_TRUE(engine.placement().expertsOn(5).empty());
}

TEST(ServeFaultTest, EmptyPlanReportIsBitwiseIdentical)
{
    const System sys = System::make(smallWsc());
    ServeConfig sc = loadedServeConfig(30);

    ServeSimulator plain(sys.mapping(), sc);
    const ServeReport a = plain.run();

    ServeConfig withNone = sc;
    withNone.faults = makeFaultScenario(
        FaultScenarioKind::None, sys.mapping().topology());
    ASSERT_TRUE(withNone.faults.empty());
    ServeSimulator gated(sys.mapping(), withNone);
    const ServeReport b = gated.run();

    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.ttftP50, b.ttftP50);
    EXPECT_EQ(a.ttftP99, b.ttftP99);
    EXPECT_EQ(a.tpotP99, b.tpotP99);
    EXPECT_EQ(a.latencyP99, b.latencyP99);
    EXPECT_EQ(a.throughputTokensPerSec, b.throughputTokensPerSec);
    EXPECT_EQ(a.goodputRequestsPerSec, b.goodputRequestsPerSec);
    EXPECT_EQ(a.sloAttainment, b.sloAttainment);
    EXPECT_EQ(
        plain.stats().distributionView("serve.kv.reserved_tokens").max,
        gated.stats().distributionView("serve.kv.reserved_tokens").max);
    ASSERT_EQ(a.trace.size(), b.trace.size());
    for (std::size_t i = 0; i < a.trace.size(); ++i) {
        EXPECT_EQ(a.trace[i].time, b.trace[i].time);
        EXPECT_EQ(a.trace[i].kvReserved, b.trace[i].kvReserved);
    }
    EXPECT_EQ(b.shedRequests, 0);
    EXPECT_EQ(b.failedRequests, 0);
    EXPECT_EQ(b.retriesTotal, 0);
    EXPECT_TRUE(b.faultWindows.empty());
}

TEST(ServeFaultTest, NodeLossUnderLoadRetriesAndAttributes)
{
    const System sys = System::make(smallWsc());
    ServeConfig sc = loadedServeConfig(40);
    FaultScenarioSpec spec;
    spec.startIteration = 40;
    sc.faults = makeFaultScenario(FaultScenarioKind::NodeLoss,
                                  sys.mapping().topology(), spec);

    ServeSimulator sim(sys.mapping(), sc);
    const ServeReport r = sim.run();

    EXPECT_EQ(r.faultEventsApplied, 1);
    EXPECT_LT(r.liveDeviceFractionMin, 1.0);
    EXPECT_GE(r.retriesTotal, 1);

    // Every request reaches a terminal outcome exactly once.
    int completed = 0, shed = 0, failed = 0;
    for (const RequestMetrics &m : r.requests) {
        switch (m.outcome) {
        case RequestOutcome::Completed:
            ++completed;
            break;
        case RequestOutcome::Shed:
            ++shed;
            EXPECT_EQ(m.firstTokenTime, 0.0);
            break;
        case RequestOutcome::Failed:
            ++failed;
            break;
        }
    }
    EXPECT_EQ(completed + shed + failed, sc.numRequests);
    EXPECT_EQ(shed, r.shedRequests);
    EXPECT_EQ(failed, r.failedRequests);

    // Attribution windows tile [0, makespan] without gaps.
    ASSERT_EQ(r.faultWindows.size(),
              static_cast<std::size_t>(r.faultEventsApplied) + 1);
    EXPECT_EQ(r.faultWindows.front().eventIndex, -1);
    EXPECT_EQ(r.faultWindows.front().startTime, 0.0);
    for (std::size_t i = 1; i < r.faultWindows.size(); ++i) {
        EXPECT_EQ(r.faultWindows[i - 1].endTime,
                  r.faultWindows[i].startTime);
    }
    EXPECT_EQ(r.faultWindows.back().endTime, r.makespan);
    int windowTotal = 0;
    for (const FaultEventWindow &w : r.faultWindows)
        windowTotal += w.completed + w.shed + w.failed;
    EXPECT_EQ(windowTotal, sc.numRequests);
}

TEST(ServeFaultTest, CascadeRunsAreDeterministic)
{
    const System sys = System::make(smallWsc());
    ServeConfig sc = loadedServeConfig(32);
    FaultScenarioSpec spec;
    spec.startIteration = 20;
    spec.spacing = 15;
    sc.faults = makeFaultScenario(FaultScenarioKind::Cascade,
                                  sys.mapping().topology(), spec);

    const ServeReport a = ServeSimulator(sys.mapping(), sc).run();
    const ServeReport b = ServeSimulator(sys.mapping(), sc).run();

    EXPECT_EQ(a.iterations, b.iterations);
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.goodputRequestsPerSec, b.goodputRequestsPerSec);
    EXPECT_EQ(a.latencyP99, b.latencyP99);
    EXPECT_EQ(a.shedRequests, b.shedRequests);
    EXPECT_EQ(a.failedRequests, b.failedRequests);
    EXPECT_EQ(a.retriesTotal, b.retriesTotal);
    ASSERT_EQ(a.faultWindows.size(), b.faultWindows.size());
    for (std::size_t i = 0; i < a.faultWindows.size(); ++i) {
        EXPECT_EQ(a.faultWindows[i].startTime,
                  b.faultWindows[i].startTime);
        EXPECT_EQ(a.faultWindows[i].goodputRequestsPerSec,
                  b.faultWindows[i].goodputRequestsPerSec);
    }
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].finishTime, b.requests[i].finishTime);
        EXPECT_EQ(a.requests[i].outcome, b.requests[i].outcome);
        EXPECT_EQ(a.requests[i].retries, b.requests[i].retries);
    }
}

TEST(FaultScenarioTest, GeneratorsProduceValidPlans)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    for (const FaultScenarioKind kind :
         {FaultScenarioKind::None, FaultScenarioKind::DegradedLinks,
          FaultScenarioKind::LinkCut, FaultScenarioKind::Straggler,
          FaultScenarioKind::NodeLoss, FaultScenarioKind::Cascade}) {
        const FaultPlan plan = makeFaultScenario(kind, mesh);
        plan.validate(mesh); // fatal() on any malformation
        EXPECT_EQ(plan.empty(), kind == FaultScenarioKind::None)
            << faultScenarioName(kind);
        // Same inputs, same plan: the determinism contract.
        const FaultPlan again = makeFaultScenario(kind, mesh);
        ASSERT_EQ(plan.events.size(), again.events.size());
        for (std::size_t i = 0; i < plan.events.size(); ++i) {
            EXPECT_EQ(plan.events[i].iteration,
                      again.events[i].iteration);
            EXPECT_EQ(plan.events[i].target, again.events[i].target);
            EXPECT_EQ(plan.events[i].factor, again.events[i].factor);
        }
    }
}
