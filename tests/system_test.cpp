/**
 * @file
 * Tests for the System factory and the communication-only evaluator.
 */

#include <gtest/gtest.h>

#include "core/moentwine.hh"

using namespace moentwine;

// ------------------------------------------------------ System ----

TEST(System, WscErConstruction)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);
    EXPECT_EQ(sys.mapping().numDevices(), 16);
    EXPECT_EQ(sys.mapping().tp(), 4);
    EXPECT_NE(sys.mesh(), nullptr);
    EXPECT_EQ(sys.name(), "4x4 WSC / ER-Mapping");
}

TEST(System, WscBaselineConstruction)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscBaseline;
    sc.meshN = 6;
    sc.tp = 6;
    const System sys = System::make(sc);
    EXPECT_EQ(sys.mapping().numDevices(), 36);
    EXPECT_FALSE(sys.mapping().staggeredRings());
}

TEST(System, WscHerMultiWafer)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscHer;
    sc.meshN = 4;
    sc.wafers = 4;
    sc.tp = 4;
    const System sys = System::make(sc);
    EXPECT_EQ(sys.mapping().numDevices(), 64);
    EXPECT_EQ(sys.mesh()->numWafers(), 4);
    EXPECT_EQ(sys.mapping().name(), "HER-Mapping");
}

TEST(System, DgxConstruction)
{
    SystemConfig sc;
    sc.platform = PlatformKind::DgxCluster;
    sc.dgxNodes = 4;
    sc.tp = 8;
    const System sys = System::make(sc);
    EXPECT_EQ(sys.mapping().numDevices(), 32);
    EXPECT_EQ(sys.mesh(), nullptr);
}

TEST(System, Nvl72Construction)
{
    SystemConfig sc;
    sc.platform = PlatformKind::Nvl72;
    sc.tp = 4;
    const System sys = System::make(sc);
    EXPECT_EQ(sys.mapping().numDevices(), 72);
    EXPECT_EQ(sys.mapping().dp(), 18);
}

TEST(System, MappingOutlivesFactoryScope)
{
    // The System owns both topology and mapping; using the mapping
    // after make() returns must be safe.
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);
    EXPECT_GT(sys.mapping().allReduce(1e6, true).time, 0.0);
}

// ---------------------------------------------------- comm eval ----

TEST(CommEval, AllComponentsPositive)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);
    const auto r =
        evaluateCommunication(sys.mapping(), qwen3(), 256, true);
    EXPECT_GT(r.allReduce, 0.0);
    EXPECT_GT(r.dispatch, 0.0);
    EXPECT_GT(r.combine, 0.0);
    EXPECT_NEAR(r.total(), r.allReduce + r.dispatch + r.combine, 1e-15);
}

TEST(CommEval, DispatchAndCombineSymmetric)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);
    const auto r =
        evaluateCommunication(sys.mapping(), qwen3(), 256, true);
    // Balanced gating and reversed flows: equal phase times.
    EXPECT_NEAR(r.dispatch, r.combine, r.dispatch * 1e-9);
}

TEST(CommEval, VolumeScalesWithTokens)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscBaseline;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);
    const auto small =
        evaluateCommunication(sys.mapping(), qwen3(), 256, true);
    const auto large =
        evaluateCommunication(sys.mapping(), qwen3(), 1024, true);
    EXPECT_GT(large.allToAll(), 3.0 * small.allToAll());
    EXPECT_LT(large.allToAll(), 5.0 * small.allToAll());
}

TEST(CommEval, FractionalPerExpertCountsPreserveVolume)
{
    // Tiny token counts produce per-(group, expert) expectations < 1;
    // the evaluator must still charge the right total volume.
    SystemConfig sc;
    sc.platform = PlatformKind::WscBaseline;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);
    const auto tiny =
        evaluateCommunication(sys.mapping(), deepseekV3(), 16, true);
    const auto big =
        evaluateCommunication(sys.mapping(), deepseekV3(), 1600, true);
    EXPECT_NEAR(big.a2aTraffic.totalFlowBytes() /
                    tiny.a2aTraffic.totalFlowBytes(),
                100.0, 1.0);
}

TEST(CommEval, TrafficCoversMeshLinks)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);
    const auto r =
        evaluateCommunication(sys.mapping(), deepseekV3(), 256, true);
    EXPECT_GT(r.arTraffic.busyLinkCount(), 8);
    EXPECT_GT(r.a2aTraffic.busyLinkCount(), 8);
}

TEST(CommEval, ErConfinesTrafficToFtds)
{
    // Under ER-Mapping all dispatch traffic stays inside FTD blocks:
    // links connecting different FTDs stay cold during all-to-all.
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);
    const auto *mesh = sys.mesh();
    const auto r =
        evaluateCommunication(sys.mapping(), deepseekV3(), 256, true);
    for (std::size_t l = 0; l < mesh->links().size(); ++l) {
        const Link &link = mesh->links()[l];
        if (sys.mapping().ftdOf(link.src) !=
            sys.mapping().ftdOf(link.dst)) {
            EXPECT_DOUBLE_EQ(
                r.a2aTraffic.linkVolume(static_cast<LinkId>(l)), 0.0);
        }
    }
}

TEST(CommEval, BaselineLeaksTrafficAcrossFtds)
{
    // The baseline mapping's overlapping FTDs push all-to-all traffic
    // across FTD boundaries — the congestion ER-Mapping eliminates.
    SystemConfig sc;
    sc.platform = PlatformKind::WscBaseline;
    sc.meshN = 4;
    sc.tp = 4;
    const System sys = System::make(sc);
    const auto *mesh = sys.mesh();
    const auto r =
        evaluateCommunication(sys.mapping(), deepseekV3(), 256, true);
    double crossFtd = 0.0;
    for (std::size_t l = 0; l < mesh->links().size(); ++l) {
        const Link &link = mesh->links()[l];
        if (sys.mapping().ftdOf(link.src) !=
            sys.mapping().ftdOf(link.dst)) {
            crossFtd +=
                r.a2aTraffic.linkVolume(static_cast<LinkId>(l));
        }
    }
    EXPECT_GT(crossFtd, 0.0);
}
