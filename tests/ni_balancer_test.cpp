/**
 * @file
 * Tests for the Non-invasive Balancer: hidden migration planning,
 * idle-budget draining, and completion-driven placement activation.
 */

#include <gtest/gtest.h>

#include "balancer/ni_balancer.hh"
#include "common/stats.hh"
#include "mapping/er_mapping.hh"
#include "topology/mesh.hh"

using namespace moentwine;

namespace {

/** 4×4 ER-mapped wafer with 16 experts on 16 devices. */
struct Fixture
{
    Fixture()
        : mesh(MeshTopology::singleWafer(4)),
          er(mesh, ParallelismConfig{2, 2})
    {
    }

    std::vector<double>
    skewedLoads() const
    {
        std::vector<double> loads(16, 0.0);
        for (int e = 0; e < 16; ++e)
            loads[std::size_t(e)] = 1000.0 / (e + 1);
        return loads;
    }

    MeshTopology mesh;
    ErMapping er;
};

} // namespace

TEST(NiBalancer, PlanEnqueuesPendingMigrations)
{
    Fixture f;
    NiBalancer ni(f.er, 42e6);
    ExpertPlacement p(16, 16, 1);
    const int n = ni.plan(f.skewedLoads(), p);
    EXPECT_GT(n, 0);
    EXPECT_EQ(ni.pendingCount(), std::size_t(n));
}

TEST(NiBalancer, ReplicasNotActiveUntilTransferCompletes)
{
    Fixture f;
    NiBalancer ni(f.er, 42e6);
    ExpertPlacement p(16, 16, 1);
    const auto loads = f.skewedLoads();
    const double before = maxOf(p.deviceHeats(loads));
    ni.plan(loads, p);
    // Placement unchanged (migrations pending, nothing arrived yet).
    EXPECT_NEAR(maxOf(p.deviceHeats(loads)), before, 1e-9);
}

TEST(NiBalancer, IdleWindowsDrainMigrations)
{
    Fixture f;
    NiBalancer ni(f.er, 42e6);
    ExpertPlacement p(16, 16, 1);
    const auto loads = f.skewedLoads();
    ni.plan(loads, p);

    // Empty traffic → full link bandwidth available. A generous window
    // must complete everything within a few alternating phases.
    const PhaseTraffic idle(f.mesh);
    int completed = 0;
    for (int phase = 0; phase < 20 && ni.pendingCount() > 0; ++phase) {
        completed += ni.advanceAttention(idle, 1e-3, p);
        completed += ni.advanceMoe(idle, 1e-3, p);
    }
    EXPECT_EQ(ni.pendingCount(), 0u);
    EXPECT_GT(completed, 0);
    // Completed replicas now reduce peak heat.
    EXPECT_LT(maxOf(p.deviceHeats(loads)), 1000.0);
}

TEST(NiBalancer, ZeroWindowMakesNoProgress)
{
    Fixture f;
    NiBalancer ni(f.er, 42e6);
    ExpertPlacement p(16, 16, 1);
    ni.plan(f.skewedLoads(), p);
    const PhaseTraffic idle(f.mesh);
    EXPECT_EQ(ni.advanceAttention(idle, 0.0, p), 0);
    EXPECT_EQ(ni.advanceMoe(idle, 0.0, p), 0);
    EXPECT_GT(ni.pendingCount(), 0u);
}

TEST(NiBalancer, SaturatedLinksBlockProgress)
{
    Fixture f;
    NiBalancer ni(f.er, 42e6);
    ExpertPlacement p(16, 16, 1);
    ni.plan(f.skewedLoads(), p);

    // Saturate every link far beyond the window capacity.
    PhaseTraffic busy(f.mesh);
    for (DeviceId a = 0; a < f.mesh.numDevices(); ++a)
        for (DeviceId b = 0; b < f.mesh.numDevices(); ++b)
            busy.addFlow(a, b, 1e12);
    const double hidden = ni.hiddenBytesMoved();
    ni.advanceAttention(busy, 1e-6, p);
    ni.advanceMoe(busy, 1e-6, p);
    EXPECT_DOUBLE_EQ(ni.hiddenBytesMoved(), hidden);
}

TEST(NiBalancer, HiddenBytesAccumulate)
{
    Fixture f;
    NiBalancer ni(f.er, 42e6);
    ExpertPlacement p(16, 16, 1);
    ni.plan(f.skewedLoads(), p);
    const PhaseTraffic idle(f.mesh);
    ni.advanceAttention(idle, 1e-5, p);
    ni.advanceMoe(idle, 1e-5, p);
    EXPECT_GT(ni.hiddenBytesMoved(), 0.0);
}

TEST(NiBalancer, RePlanDoesNotDuplicatePending)
{
    Fixture f;
    NiBalancer ni(f.er, 42e6);
    ExpertPlacement p(16, 16, 1);
    const auto loads = f.skewedLoads();
    const int first = ni.plan(loads, p);
    const int second = ni.plan(loads, p);
    EXPECT_GT(first, 0);
    EXPECT_EQ(second, 0); // identical target, transfers in flight
    EXPECT_EQ(ni.pendingCount(), std::size_t(first));
}

TEST(NiBalancer, PartialWindowNeedsMultiplePhases)
{
    Fixture f;
    // Huge expert (1 GB) with a tiny window: progress must take more
    // than one attention/MoE pair.
    NiBalancer ni(f.er, 1e9);
    ExpertPlacement p(16, 16, 1);
    ni.plan(f.skewedLoads(), p);
    const PhaseTraffic idle(f.mesh);
    ni.advanceAttention(idle, 1e-5, p);
    ni.advanceMoe(idle, 1e-5, p);
    EXPECT_GT(ni.pendingCount(), 0u);
}

TEST(NiBalancer, BalanceQualityEventuallyMatchesInvasive)
{
    Fixture f;
    const auto loads = f.skewedLoads();

    ExpertPlacement invasive(16, 16, 1);
    TopologyAwareBalancer tb(f.mesh);
    tb.rebalance(loads, invasive);

    ExpertPlacement hidden(16, 16, 1);
    NiBalancer ni(f.er, 42e6);
    ni.plan(loads, hidden);
    const PhaseTraffic idle(f.mesh);
    for (int phase = 0; phase < 50 && ni.pendingCount() > 0; ++phase) {
        ni.advanceAttention(idle, 1e-3, hidden);
        ni.advanceMoe(idle, 1e-3, hidden);
    }
    EXPECT_NEAR(maxOf(hidden.deviceHeats(loads)),
                maxOf(invasive.deviceHeats(loads)), 1e-6);
}
