/**
 * @file
 * Unit tests for the model configurations (Table I) and the roofline
 * cost model.
 */

#include <gtest/gtest.h>

#include "common/units.hh"
#include "model/cost_model.hh"
#include "model/moe_config.hh"

using namespace moentwine;

// ---------------------------------------------------------- Table I ----

TEST(ModelConfig, DeepSeekV3MatchesTable1)
{
    const auto m = deepseekV3();
    EXPECT_EQ(m.name, "DeepSeek-V3");
    EXPECT_EQ(m.sparseLayers, 58);
    EXPECT_EQ(m.totalLayers, 61);
    EXPECT_DOUBLE_EQ(m.expertBytes, 42 * units::MB);
    EXPECT_EQ(m.expertsActivated, 8);
    EXPECT_EQ(m.expertsTotal, 256);
}

TEST(ModelConfig, Qwen3MatchesTable1)
{
    const auto m = qwen3();
    EXPECT_EQ(m.sparseLayers, 94);
    EXPECT_EQ(m.totalLayers, 94);
    EXPECT_DOUBLE_EQ(m.expertBytes, 18 * units::MB);
    EXPECT_EQ(m.expertsActivated, 8);
    EXPECT_EQ(m.expertsTotal, 128);
}

TEST(ModelConfig, DeepSeekV2MatchesTable1)
{
    const auto m = deepseekV2();
    EXPECT_EQ(m.sparseLayers, 59);
    EXPECT_EQ(m.totalLayers, 60);
    EXPECT_DOUBLE_EQ(m.expertBytes, 23 * units::MB);
    EXPECT_EQ(m.expertsActivated, 6);
    EXPECT_EQ(m.expertsTotal, 160);
}

TEST(ModelConfig, DbrxMatchesTable1)
{
    const auto m = dbrx();
    EXPECT_EQ(m.sparseLayers, 40);
    EXPECT_DOUBLE_EQ(m.expertBytes, 189 * units::MB);
    EXPECT_EQ(m.expertsActivated, 4);
    EXPECT_EQ(m.expertsTotal, 16);
}

TEST(ModelConfig, MixtralMatchesTable1)
{
    const auto m = mixtral8x22b();
    EXPECT_EQ(m.sparseLayers, 56);
    EXPECT_DOUBLE_EQ(m.expertBytes, 288 * units::MB);
    EXPECT_EQ(m.expertsActivated, 2);
    EXPECT_EQ(m.expertsTotal, 8);
}

TEST(ModelConfig, AllModelsInPaperOrder)
{
    const auto all = allModels();
    ASSERT_EQ(all.size(), 5u);
    EXPECT_EQ(all[0].name, "DeepSeek-V3");
    EXPECT_EQ(all[4].name, "Mixtral-8x22B");
}

TEST(ModelConfig, TokenBytesIsFp16Hidden)
{
    EXPECT_DOUBLE_EQ(deepseekV3().tokenBytes(), 2.0 * 7168);
    EXPECT_DOUBLE_EQ(qwen3().tokenBytes(), 2.0 * 4096);
}

TEST(ModelConfig, ExpertOpsDerivedFromBytes)
{
    // INT8: 1 byte per parameter, 2 ops per parameter.
    EXPECT_DOUBLE_EQ(deepseekV3().expertOpsPerToken(),
                     2.0 * 42 * units::MB);
}

TEST(ModelConfig, EdRatio)
{
    EXPECT_DOUBLE_EQ(deepseekV3().edRatio(32), 8.0);
    EXPECT_DOUBLE_EQ(deepseekV3().edRatio(256), 1.0);
    EXPECT_LT(mixtral8x22b().edRatio(16), 1.0);
}

// ---------------------------------------------------------- DeviceSpec --

TEST(DeviceSpec, B200Defaults)
{
    const DeviceSpec spec;
    EXPECT_DOUBLE_EQ(spec.fp16Flops, 2250e12);
    EXPECT_DOUBLE_EQ(spec.int8Ops, 4500e12);
    EXPECT_DOUBLE_EQ(spec.hbmBytes, 180e9);
    EXPECT_DOUBLE_EQ(spec.hbmBandwidth, 8e12);
}

// ----------------------------------------------------------- CostModel --

TEST(CostModel, MoeDeviceZeroWorkIsFree)
{
    const CostModel cost;
    const auto c = cost.moeDevice(deepseekV3(), 0.0, 0.0);
    EXPECT_DOUBLE_EQ(c.computeTime, 0.0);
    EXPECT_DOUBLE_EQ(c.memoryTime, 0.0);
    EXPECT_DOUBLE_EQ(c.total(), 0.0);
}

TEST(CostModel, MoeComputeLinearInTokens)
{
    const CostModel cost;
    const auto a = cost.moeDevice(deepseekV3(), 100.0, 1.0);
    const auto b = cost.moeDevice(deepseekV3(), 200.0, 1.0);
    EXPECT_NEAR(b.computeTime, 2.0 * a.computeTime, 1e-15);
    EXPECT_DOUBLE_EQ(b.memoryTime, a.memoryTime);
}

TEST(CostModel, MoeMemoryLinearInExperts)
{
    const CostModel cost;
    const auto a = cost.moeDevice(deepseekV3(), 100.0, 1.0);
    const auto b = cost.moeDevice(deepseekV3(), 100.0, 8.0);
    EXPECT_NEAR(b.memoryTime, 8.0 * a.memoryTime, 1e-15);
}

TEST(CostModel, WeightStreamMatchesBandwidth)
{
    const CostModel cost;
    // 8 GB at 8 TB/s = 1 ms.
    EXPECT_NEAR(cost.weightStreamTime(8e9), 1e-3, 1e-12);
}

TEST(CostModel, EfficiencyScalesCompute)
{
    const CostModel full(DeviceSpec{}, 1.0);
    const CostModel half(DeviceSpec{}, 0.5);
    const auto a = full.moeDevice(qwen3(), 512.0, 1.0);
    const auto b = half.moeDevice(qwen3(), 512.0, 1.0);
    EXPECT_NEAR(b.computeTime, 2.0 * a.computeTime, 1e-15);
}

TEST(CostModel, DecodeMemoryBoundRegime)
{
    // Few tokens, all experts resident: memory must dominate (Fig. 4
    // at small EP).
    const CostModel cost;
    const auto c = cost.moeDevice(deepseekV3(), 8.0, 32.0);
    EXPECT_GT(c.memoryTime, c.computeTime);
}

TEST(CostModel, LargeEpShiftsToComputeBound)
{
    // Same total work spread at EP=256: one expert per device, many
    // tokens → compute share rises (the Fig. 4 trend).
    const CostModel cost;
    const auto lowEp = cost.moeDevice(deepseekV3(), 64.0, 8.0);
    const auto highEp = cost.moeDevice(deepseekV3(), 64.0, 1.0);
    const double lowRatio = lowEp.memoryTime / lowEp.total();
    const double highRatio = highEp.memoryTime / highEp.total();
    EXPECT_GT(lowRatio, highRatio);
}

TEST(CostModel, AttentionPrefillComputeBound)
{
    const CostModel cost;
    const double prefill = cost.attentionTime(qwen3(), 2048, 4, 4096,
                                              Stage::Prefill);
    EXPECT_GT(prefill, 0.0);
}

TEST(CostModel, AttentionDecodeScalesWithContext)
{
    const CostModel cost;
    const double shortCtx =
        cost.attentionTime(qwen3(), 256, 4, 1024, Stage::Decode);
    const double longCtx =
        cost.attentionTime(qwen3(), 256, 4, 8192, Stage::Decode);
    EXPECT_GT(longCtx, shortCtx);
}

TEST(CostModel, AttentionTpSplitsWork)
{
    const CostModel cost;
    const double tp1 =
        cost.attentionTime(qwen3(), 256, 1, 4096, Stage::Decode);
    const double tp8 =
        cost.attentionTime(qwen3(), 256, 8, 4096, Stage::Decode);
    EXPECT_GT(tp1, tp8);
}

TEST(CostModel, AttentionZeroTokensIsFree)
{
    const CostModel cost;
    EXPECT_DOUBLE_EQ(
        cost.attentionTime(qwen3(), 0, 4, 4096, Stage::Decode), 0.0);
}

TEST(CostModel, KvCompressionReducesDecodeTime)
{
    const CostModel cost;
    MoEModelConfig heavy = qwen3();
    heavy.kvCompression = 1.0;
    MoEModelConfig light = qwen3();
    light.kvCompression = 0.125;
    EXPECT_GT(cost.attentionTime(heavy, 256, 4, 4096, Stage::Decode),
              cost.attentionTime(light, 256, 4, 4096, Stage::Decode));
}
