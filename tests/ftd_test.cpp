/**
 * @file
 * Unit tests for the FTD geometric analysis helpers.
 */

#include <gtest/gtest.h>

#include "mapping/ftd.hh"
#include "topology/mesh.hh"

using namespace moentwine;

TEST(BoundingBox, SingleDevice)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const auto box = ftdBoundingBox(mesh, {mesh.deviceAt(2, 1)});
    EXPECT_EQ(box.rowLo, 2);
    EXPECT_EQ(box.rowHi, 2);
    EXPECT_EQ(box.colLo, 1);
    EXPECT_EQ(box.colHi, 1);
    EXPECT_EQ(box.area(), 1);
}

TEST(BoundingBox, SpreadSet)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const auto box = ftdBoundingBox(
        mesh, {mesh.deviceAt(0, 0), mesh.deviceAt(2, 3)});
    EXPECT_EQ(box.area(), 12);
}

TEST(BoundingBox, OverlapDetection)
{
    const BoundingBox a{0, 0, 2, 2};
    const BoundingBox b{2, 2, 3, 3};
    const BoundingBox c{3, 0, 3, 1};
    EXPECT_TRUE(a.overlaps(b));
    EXPECT_TRUE(b.overlaps(a));
    EXPECT_FALSE(a.overlaps(c)); // rows 0-2 vs row 3
    EXPECT_FALSE(b.overlaps(c)); // cols 2-3 vs cols 0-1
}

TEST(BoundingBox, SelfOverlap)
{
    const BoundingBox a{1, 1, 2, 2};
    EXPECT_TRUE(a.overlaps(a));
}

TEST(FtdAverageHops, SingletonIsZero)
{
    const MeshTopology mesh = MeshTopology::singleWafer(3);
    EXPECT_DOUBLE_EQ(ftdAverageHops(mesh, {0}), 0.0);
}

TEST(FtdAverageHops, PairIsDistance)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    EXPECT_DOUBLE_EQ(ftdAverageHops(mesh, {mesh.deviceAt(0, 0),
                                           mesh.deviceAt(0, 3)}),
                     3.0);
}

TEST(FtdAverageHops, PaperBaselineValue)
{
    // {(0,0),(0,2),(2,0),(2,2)}: distances from each member to the
    // other three are 2,2,4 → mean 8/3 ≈ 2.67 (paper's 2.7).
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const std::vector<DeviceId> ftd{
        mesh.deviceAt(0, 0), mesh.deviceAt(0, 2), mesh.deviceAt(2, 0),
        mesh.deviceAt(2, 2)};
    EXPECT_NEAR(ftdAverageHops(mesh, ftd), 8.0 / 3.0, 1e-12);
}

TEST(FtdAverageHops, PaperErValue)
{
    // Compact 2×2 block: 1,1,2 → mean 4/3 ≈ 1.33 (paper's 1.3).
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const std::vector<DeviceId> ftd{
        mesh.deviceAt(0, 0), mesh.deviceAt(0, 1), mesh.deviceAt(1, 0),
        mesh.deviceAt(1, 1)};
    EXPECT_NEAR(ftdAverageHops(mesh, ftd), 4.0 / 3.0, 1e-12);
}

TEST(CountFtdIntersections, DisjointBlocks)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const std::vector<std::vector<DeviceId>> ftds{
        {mesh.deviceAt(0, 0), mesh.deviceAt(1, 1)},
        {mesh.deviceAt(2, 2), mesh.deviceAt(3, 3)},
        {mesh.deviceAt(0, 2), mesh.deviceAt(1, 3)}};
    EXPECT_EQ(countFtdIntersections(mesh, ftds), 0);
}

TEST(CountFtdIntersections, AllOverlapInCentre)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    // Three spread FTDs all covering the centre: 3 pairs intersect.
    const std::vector<std::vector<DeviceId>> ftds{
        {mesh.deviceAt(0, 0), mesh.deviceAt(3, 3)},
        {mesh.deviceAt(0, 3), mesh.deviceAt(3, 0)},
        {mesh.deviceAt(1, 1), mesh.deviceAt(2, 2)}};
    EXPECT_EQ(countFtdIntersections(mesh, ftds), 3);
}
