/**
 * @file
 * Equivalence and policy tests for the dense/sparse traffic
 * accumulator behind the token router:
 *  - policy: Auto selects the dense matrix below the device threshold
 *    and the sparse hash at or above it, through the accumulator, the
 *    mapping plumbing, and SystemConfig;
 *  - determinism: forEachTiled() emits in row-major order for systems
 *    within one tile (the historical dense scan) and in identical
 *    tile-major order under both storages beyond it;
 *  - regression: routed flow lists, a fig-style comm-eval cell, an
 *    engine run, and a faulted engine run are bitwise identical under
 *    forced Dense and forced Sparse storage;
 *  - footprint: the sparse per-iteration path (reset/add/forEachTiled)
 *    is allocation-free in steady state;
 *  - concurrency: sweep workers sharing one const sparse-storage
 *    System produce rows byte-identical to a serial pass (the TSan
 *    target).
 *  - loud failure: PhaseTraffic::merge()/retarget() across mismatched
 *    link sets die with a diagnostic instead of corrupting buffers.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>
#include <vector>

#include "core/moentwine.hh"
#include "fault/fault.hh"
#include "sweep/sweep.hh"

// Counting global allocator: lets the steady-state test assert the
// sparse accumulation path performs zero heap allocation. Atomic to
// stay safe if a test spawns threads.
namespace {
std::atomic<std::size_t> g_allocCount{0};
} // namespace

void *
operator new(std::size_t size)
{
    ++g_allocCount;
    if (void *p = std::malloc(size ? size : 1))
        return p;
    throw std::bad_alloc();
}

void *
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void *p) noexcept
{
    std::free(p);
}

void
operator delete(void *p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void *p) noexcept
{
    std::free(p);
}

void
operator delete[](void *p, std::size_t) noexcept
{
    std::free(p);
}

using namespace moentwine;

namespace {

struct Emitted
{
    DeviceId src;
    DeviceId dst;
    double bytes;

    bool operator==(const Emitted &o) const
    {
        return src == o.src && dst == o.dst && bytes == o.bytes;
    }
};

std::vector<Emitted>
collect(TrafficAccumulator &acc)
{
    std::vector<Emitted> out;
    acc.forEachTiled([&out](DeviceId s, DeviceId d, double b) {
        out.push_back(Emitted{s, d, b});
    });
    return out;
}

/** Deterministic scattered fill, identical for both accumulators. */
void
fillPattern(TrafficAccumulator &acc, int devices)
{
    for (int i = 0; i < devices * 7; ++i) {
        const DeviceId s = static_cast<DeviceId>((i * 131 + 7) % devices);
        const DeviceId d = static_cast<DeviceId>((i * 37 + 3) % devices);
        if (s == d)
            continue;
        acc.add(s, d, 64.0 + static_cast<double>(i % 13));
    }
}

} // namespace

TEST(TrafficAccum, AutoPolicySelectsByDeviceCount)
{
    const int T = TrafficAccumulator::kSparseAutoThreshold;
    EXPECT_EQ(TrafficAccumulator::resolve(TrafficStorageKind::Auto, T - 1),
              TrafficStorageKind::Dense);
    EXPECT_EQ(TrafficAccumulator::resolve(TrafficStorageKind::Auto, T),
              TrafficStorageKind::Sparse);
    EXPECT_EQ(TrafficAccumulator::resolve(TrafficStorageKind::Dense, T),
              TrafficStorageKind::Dense);
    EXPECT_EQ(
        TrafficAccumulator::resolve(TrafficStorageKind::Sparse, T - 1),
        TrafficStorageKind::Sparse);

    // Through the mapping plumbing: small systems resolve Auto to the
    // dense matrix, and a forced policy sticks.
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    const System autoSys = System::make(sc);
    EXPECT_EQ(autoSys.mapping().trafficStorage(),
              TrafficStorageKind::Auto);
    EXPECT_EQ(autoSys.mapping().activeTrafficStorage(),
              TrafficStorageKind::Dense);

    sc.trafficStorage = TrafficStorageKind::Sparse;
    const System sparseSys = System::make(sc);
    EXPECT_EQ(sparseSys.mapping().activeTrafficStorage(),
              TrafficStorageKind::Sparse);

    // The router honours the policy: an aggregated routing pass on the
    // sparse-forced system leaves a sparse-active accumulator.
    const ExpertPlacement p(qwen3().expertsTotal,
                            sparseSys.mapping().numDevices(), 1);
    WorkloadConfig wc;
    wc.numExperts = qwen3().expertsTotal;
    wc.topK = qwen3().expertsActivated;
    WorkloadGenerator gen(wc);
    RoutedTraffic routed;
    routeTokens(sparseSys.mapping(), p,
                gen.sampleCounts(0, 0, 32, sparseSys.mapping().dp()),
                512.0, true, wc.topK, routed, true);
    EXPECT_EQ(routed.pairBytes.activeKind(), TrafficStorageKind::Sparse);
    EXPECT_GT(routed.pairBytes.occupancy(), 0u);
}

TEST(TrafficAccum, SingleTileEmissionIsRowMajor)
{
    // Systems within one 64-device tile must emit in plain row-major
    // order — the historical dense-scan order every ≤64-device figure
    // driver was pinned against.
    const int devices = 48;
    TrafficAccumulator dense;
    dense.reset(devices, TrafficStorageKind::Dense);
    TrafficAccumulator sparse;
    sparse.reset(devices, TrafficStorageKind::Sparse);
    fillPattern(dense, devices);
    fillPattern(sparse, devices);

    const auto emitted = collect(dense);
    ASSERT_FALSE(emitted.empty());
    for (std::size_t i = 1; i < emitted.size(); ++i) {
        const long prev = static_cast<long>(emitted[i - 1].src) * devices +
            emitted[i - 1].dst;
        const long cur = static_cast<long>(emitted[i].src) * devices +
            emitted[i].dst;
        EXPECT_LT(prev, cur) << "emission not row-major at " << i;
    }
    EXPECT_EQ(collect(sparse), emitted);
}

TEST(TrafficAccum, MultiTileEmissionIdenticalAcrossStorages)
{
    // Past one tile both storages must produce the same tile-major
    // sequence: (src/64, dst/64, src, dst) lexicographic.
    const int devices = 150;
    TrafficAccumulator dense;
    dense.reset(devices, TrafficStorageKind::Dense);
    TrafficAccumulator sparse;
    sparse.reset(devices, TrafficStorageKind::Sparse);
    fillPattern(dense, devices);
    fillPattern(sparse, devices);

    const auto a = collect(dense);
    const auto b = collect(sparse);
    ASSERT_FALSE(a.empty());
    EXPECT_EQ(a, b);

    const int T = TrafficAccumulator::kTileDevices;
    for (std::size_t i = 1; i < a.size(); ++i) {
        const auto key = [&](const Emitted &e) {
            return ((static_cast<long>(e.src) / T) << 48) |
                ((static_cast<long>(e.dst) / T) << 32) |
                (static_cast<long>(e.src) << 16) |
                static_cast<long>(e.dst);
        };
        EXPECT_LT(key(a[i - 1]), key(a[i]))
            << "emission not tile-major at " << i;
    }

    // Point queries agree with the emitted values under both storages.
    for (const Emitted &e : a) {
        EXPECT_EQ(dense.at(e.src, e.dst), e.bytes);
        EXPECT_EQ(sparse.at(e.src, e.dst), e.bytes);
    }
    EXPECT_EQ(dense.occupancy(), sparse.occupancy());
}

TEST(TrafficAccum, RoutedFlowsBitwiseIdenticalAcrossStorages)
{
    // A multi-tile routed batch: identical flow lists (order, values)
    // under forced Dense and forced Sparse accumulation.
    MeshTopology mesh = MeshTopology::waferRow(2, 8);
    HierarchicalErMapping her(
        mesh, decomposeTp(4, mesh.waferRows(), mesh.waferCols()));
    const ExpertPlacement p(128, her.numDevices(), 1);
    WorkloadConfig wc;
    wc.numExperts = 128;
    wc.topK = 8;
    wc.mode = GatingMode::MixedScenario;
    WorkloadGenerator gen(wc);
    const auto counts = gen.sampleCounts(0, 0, 48, her.dp());

    her.setTrafficStorage(TrafficStorageKind::Dense);
    RoutedTraffic dense;
    routeTokens(her, p, counts, 1024.0, true, wc.topK, dense, true);
    ASSERT_EQ(dense.pairBytes.activeKind(), TrafficStorageKind::Dense);

    her.setTrafficStorage(TrafficStorageKind::Sparse);
    RoutedTraffic sparse;
    routeTokens(her, p, counts, 1024.0, true, wc.topK, sparse, true);
    ASSERT_EQ(sparse.pairBytes.activeKind(), TrafficStorageKind::Sparse);

    ASSERT_EQ(dense.dispatch.size(), sparse.dispatch.size());
    ASSERT_GT(dense.dispatch.size(), 0u);
    for (std::size_t i = 0; i < dense.dispatch.size(); ++i) {
        EXPECT_EQ(dense.dispatch[i].src, sparse.dispatch[i].src);
        EXPECT_EQ(dense.dispatch[i].dst, sparse.dispatch[i].dst);
        EXPECT_EQ(dense.dispatch[i].bytes, sparse.dispatch[i].bytes);
        EXPECT_EQ(dense.combine[i].src, sparse.combine[i].src);
        EXPECT_EQ(dense.combine[i].dst, sparse.combine[i].dst);
        EXPECT_EQ(dense.combine[i].bytes, sparse.combine[i].bytes);
    }
    EXPECT_EQ(dense.pairBytes.occupancy(), sparse.pairBytes.occupancy());
}

TEST(TrafficAccum, FigCellBitwiseEquivalentAcrossStorages)
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscHer;
    sc.meshN = 4;
    sc.wafers = 2;
    sc.tp = 4;

    sc.trafficStorage = TrafficStorageKind::Dense;
    const System denseSys = System::make(sc);
    sc.trafficStorage = TrafficStorageKind::Sparse;
    const System sparseSys = System::make(sc);

    const auto a = evaluateCommunication(denseSys.mapping(), qwen3(), 256,
                                         true);
    const auto b = evaluateCommunication(sparseSys.mapping(), qwen3(),
                                         256, true);
    EXPECT_EQ(a.allReduce, b.allReduce);
    EXPECT_EQ(a.dispatch, b.dispatch);
    EXPECT_EQ(a.combine, b.combine);
}

TEST(TrafficAccum, EngineRunBitwiseEquivalentAcrossStorages)
{
    // 100 devices: multi-tile emission on the engine's hot path.
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 10;
    sc.tp = 4;

    EngineConfig ec;
    ec.model = qwen3();
    ec.schedule = SchedulingMode::DecodeOnly;
    ec.decodeTokensPerGroup = 64;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.balancer = BalancerKind::TopologyAware;
    ec.beta = 3;

    sc.trafficStorage = TrafficStorageKind::Dense;
    const System denseSys = System::make(sc);
    sc.trafficStorage = TrafficStorageKind::Sparse;
    const System sparseSys = System::make(sc);

    InferenceEngine denseEngine(denseSys.mapping(), ec);
    InferenceEngine sparseEngine(sparseSys.mapping(), ec);
    const auto denseStats = denseEngine.run(12);
    const auto sparseStats = sparseEngine.run(12);
    ASSERT_EQ(denseStats.size(), sparseStats.size());
    for (std::size_t i = 0; i < denseStats.size(); ++i) {
        EXPECT_EQ(denseStats[i].layerTime(ec.pipelineStages),
                  sparseStats[i].layerTime(ec.pipelineStages))
            << "iteration " << i;
        EXPECT_EQ(denseStats[i].allReduce, sparseStats[i].allReduce);
        EXPECT_EQ(denseStats[i].dispatch, sparseStats[i].dispatch);
        EXPECT_EQ(denseStats[i].combine, sparseStats[i].combine);
    }
}

TEST(TrafficAccum, FaultedEngineRunBitwiseEquivalentAcrossStorages)
{
    // The fault-overlay path (retargeted PhaseTraffic, lost devices,
    // straggler scaling) must stay bitwise identical across storages.
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;

    EngineConfig ec;
    ec.model = qwen3();
    ec.schedule = SchedulingMode::DecodeOnly;
    ec.decodeTokensPerGroup = 32;
    ec.workload.mode = GatingMode::MixedScenario;
    ec.balancer = BalancerKind::None;

    FaultPlan plan;
    plan.events.push_back(FaultEvent::slowNode(2, 3, 2.0));
    plan.events.push_back(FaultEvent::nodeFail(5, 7));

    sc.trafficStorage = TrafficStorageKind::Dense;
    const System denseSys = System::make(sc);
    sc.trafficStorage = TrafficStorageKind::Sparse;
    const System sparseSys = System::make(sc);

    FaultInjector denseInj(denseSys.mapping().topology(), plan);
    FaultInjector sparseInj(sparseSys.mapping().topology(), plan);
    InferenceEngine denseEngine(denseSys.mapping(), ec);
    InferenceEngine sparseEngine(sparseSys.mapping(), ec);
    denseEngine.attachFaults(&denseInj);
    sparseEngine.attachFaults(&sparseInj);

    const auto denseStats = denseEngine.run(10);
    const auto sparseStats = sparseEngine.run(10);
    ASSERT_EQ(denseStats.size(), sparseStats.size());
    for (std::size_t i = 0; i < denseStats.size(); ++i) {
        EXPECT_EQ(denseStats[i].layerTime(ec.pipelineStages),
                  sparseStats[i].layerTime(ec.pipelineStages))
            << "iteration " << i;
        EXPECT_EQ(denseStats[i].dispatch, sparseStats[i].dispatch);
        EXPECT_EQ(denseStats[i].combine, sparseStats[i].combine);
    }
}

TEST(TrafficAccum, SparsePathIsAllocationFreeInSteadyState)
{
    const int devices = 150;
    TrafficAccumulator acc;
    // Warm-up: grows the hash and the emission scratch to the
    // workload's high-water occupancy.
    acc.reset(devices, TrafficStorageKind::Sparse);
    fillPattern(acc, devices);
    double sink = 0.0;
    acc.forEachTiled(
        [&sink](DeviceId, DeviceId, double b) { sink += b; });

    // Steady state: a full reset/add/emit cycle at the same occupancy
    // must not touch the heap.
    const std::size_t before = g_allocCount.load();
    acc.reset(devices, TrafficStorageKind::Sparse);
    fillPattern(acc, devices);
    acc.forEachTiled(
        [&sink](DeviceId, DeviceId, double b) { sink += b; });
    EXPECT_EQ(g_allocCount.load(), before)
        << "sparse accumulation must not allocate in steady state";
    EXPECT_GT(sink, 0.0);
}

TEST(TrafficAccum, ConcurrentSweepWorkersShareConstSparseSystem)
{
    // Sweep workers share one const System with the sparse policy; the
    // pool rows must be byte-identical to a serial pass (and TSan must
    // see no races — this test runs in the TSan job).
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 10;
    sc.tp = 4;
    sc.trafficStorage = TrafficStorageKind::Sparse;
    const auto sys = std::make_shared<const System>(System::make(sc));

    SweepGrid grid;
    grid.balancers = {BalancerKind::None, BalancerKind::TopologyAware};
    const SweepRunner::CellFn cell = [&sys](const SweepCell &c) {
        EngineConfig ec;
        ec.model = qwen3();
        ec.schedule = SchedulingMode::DecodeOnly;
        ec.decodeTokensPerGroup = 32;
        ec.workload.mode = GatingMode::MixedScenario;
        ec.balancer = c.point.balancerKind();
        ec.beta = 2;
        InferenceEngine engine(sys->mapping(), ec);
        double layerSum = 0.0;
        for (const auto &s : engine.run(4))
            layerSum += s.layerTime(ec.pipelineStages);
        SweepResult row;
        row.label = "cell" + std::to_string(c.point.index);
        row.add("layer_sum_s", layerSum);
        return row;
    };

    const SweepRunner serial(1);
    const auto serialRows = serial.run(grid, cell);
    const SweepRunner pool(4);
    const auto poolRows = pool.run(grid, cell);
    ASSERT_EQ(serialRows.size(), poolRows.size());
    for (std::size_t i = 0; i < serialRows.size(); ++i) {
        EXPECT_EQ(serialRows[i].label, poolRows[i].label);
        EXPECT_EQ(serialRows[i].metric("layer_sum_s"),
                  poolRows[i].metric("layer_sum_s"));
    }
}

TEST(TrafficAccumDeathTest, MergeAcrossTopologiesDiesLoudly)
{
    const MeshTopology small = MeshTopology::singleWafer(3);
    const MeshTopology big = MeshTopology::singleWafer(4);
    PhaseTraffic a(small);
    PhaseTraffic b(big);
    a.addFlow(0, 1, 64.0);
    b.addFlow(0, 1, 64.0);
    EXPECT_DEATH(a.merge(b), "merging phases over different topologies");
}

TEST(TrafficAccumDeathTest, RetargetAcrossTopologiesDiesLoudly)
{
    const MeshTopology small = MeshTopology::singleWafer(3);
    const MeshTopology big = MeshTopology::singleWafer(4);
    PhaseTraffic a(small);
    EXPECT_DEATH(a.retarget(big),
                 "retarget across topologies with different link sets");
}
