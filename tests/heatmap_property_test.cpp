/**
 * @file
 * Property tests for the Fig. 11 claim NI-Balancer is built on: under
 * ER-Mapping, the hot/cold link distributions of the attention
 * all-reduce and the MoE all-to-all are complementary, across every
 * mesh scale and TP shape the paper shows.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "core/moentwine.hh"

using namespace moentwine;

class ComplementaryLinks
    : public ::testing::TestWithParam<std::tuple<int, int>>
{
  protected:
    struct PhaseVolumes
    {
        double arIntra = 0.0;
        double arInter = 0.0;
        double a2aIntra = 0.0;
        double a2aInter = 0.0;
    };

    PhaseVolumes
    measure() const
    {
        const auto [meshN, tp] = GetParam();
        const MeshTopology mesh = MeshTopology::singleWafer(meshN);
        const ErMapping er(mesh, decomposeTp(tp, meshN, meshN));
        const auto comm =
            evaluateCommunication(er, deepseekV3(), 256, true);
        PhaseVolumes v;
        for (std::size_t l = 0; l < mesh.links().size(); ++l) {
            const Link &link = mesh.links()[l];
            const bool inter =
                er.ftdOf(link.src) != er.ftdOf(link.dst);
            const auto id = static_cast<LinkId>(l);
            (inter ? v.arInter : v.arIntra) +=
                comm.arTraffic.linkVolume(id);
            (inter ? v.a2aInter : v.a2aIntra) +=
                comm.a2aTraffic.linkVolume(id);
        }
        return v;
    }
};

TEST_P(ComplementaryLinks, AllToAllNeverCrossesFtdBoundaries)
{
    // Fig. 11(b): all inter-FTD links are cold during all-to-all.
    const auto v = measure();
    EXPECT_DOUBLE_EQ(v.a2aInter, 0.0);
    EXPECT_GT(v.a2aIntra, 0.0);
}

TEST_P(ComplementaryLinks, AllReduceLoadsInterFtdLinks)
{
    // Fig. 11(a): the entwined rings hop across FTD boundaries, so
    // all-reduce traffic must put volume on inter-FTD links — the
    // capacity Global Migration borrows during the MoE phase.
    const auto [meshN, tp] = GetParam();
    if (tp == meshN * meshN)
        GTEST_SKIP() << "degenerate: one group spanning everything";
    const auto v = measure();
    EXPECT_GT(v.arInter, 0.0);
}

TEST_P(ComplementaryLinks, MigrationWindowsExistInBothPhases)
{
    // NI-Balancer's premise: every phase leaves idle capacity on the
    // link class the other phase saturates.
    const auto [meshN, tp] = GetParam();
    const MeshTopology mesh = MeshTopology::singleWafer(meshN);
    const ErMapping er(mesh, decomposeTp(tp, meshN, meshN));
    const auto comm =
        evaluateCommunication(er, deepseekV3(), 256, true);

    const double arWindow = comm.allReduce;
    const double a2aWindow = comm.allToAll();
    double intraIdleDuringAr = 0.0;
    double interIdleDuringA2a = 0.0;
    for (std::size_t l = 0; l < mesh.links().size(); ++l) {
        const Link &link = mesh.links()[l];
        const bool inter = er.ftdOf(link.src) != er.ftdOf(link.dst);
        const auto id = static_cast<LinkId>(l);
        if (!inter)
            intraIdleDuringAr += comm.arTraffic.idleBytes(id, arWindow);
        else
            interIdleDuringA2a +=
                comm.a2aTraffic.idleBytes(id, a2aWindow);
    }
    EXPECT_GT(intraIdleDuringAr, 0.0);
    EXPECT_GT(interIdleDuringA2a, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Fig11Cases, ComplementaryLinks,
    ::testing::Values(std::make_tuple(4, 4),   // Fig. 11(a)/(b)
                      std::make_tuple(4, 2),   // Fig. 11(c) left
                      std::make_tuple(6, 4),   // Fig. 11(c) right
                      std::make_tuple(6, 6),
                      std::make_tuple(8, 4),
                      std::make_tuple(8, 16)));
