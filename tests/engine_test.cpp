/**
 * @file
 * Tests for the inference engine: timeline composition, balancer
 * integration, and the scheduling modes.
 */

#include <gtest/gtest.h>

#include "core/moentwine.hh"

using namespace moentwine;

namespace {

System
smallWsc()
{
    SystemConfig sc;
    sc.platform = PlatformKind::WscEr;
    sc.meshN = 4;
    sc.tp = 4;
    return System::make(sc);
}

EngineConfig
baseConfig()
{
    EngineConfig ec;
    ec.model = qwen3();
    ec.decodeTokensPerGroup = 128;
    ec.workload.mode = GatingMode::SingleScenario;
    ec.workload.scenario = ScenarioKind::Math;
    return ec;
}

} // namespace

TEST(Engine, DeterministicAcrossRuns)
{
    const System sys = smallWsc();
    InferenceEngine a(sys.mapping(), baseConfig());
    InferenceEngine b(sys.mapping(), baseConfig());
    const auto ra = a.run(5);
    const auto rb = b.run(5);
    for (std::size_t i = 0; i < ra.size(); ++i) {
        EXPECT_DOUBLE_EQ(ra[i].moeTime, rb[i].moeTime);
        EXPECT_DOUBLE_EQ(ra[i].dispatch, rb[i].dispatch);
    }
}

TEST(Engine, AllComponentsPositiveInDecode)
{
    const System sys = smallWsc();
    InferenceEngine engine(sys.mapping(), baseConfig());
    const auto s = engine.step();
    EXPECT_GT(s.attnCompute, 0.0);
    EXPECT_GT(s.allReduce, 0.0);
    EXPECT_GT(s.dispatch, 0.0);
    EXPECT_GT(s.combine, 0.0);
    EXPECT_GT(s.moeTime, 0.0);
    EXPECT_GT(s.moeMemoryOnly, 0.0); // decode streams expert weights
    EXPECT_DOUBLE_EQ(s.migrationOverhead, 0.0);
}

TEST(Engine, LayerTimeComposition)
{
    const System sys = smallWsc();
    const EngineConfig ec = baseConfig();
    InferenceEngine engine(sys.mapping(), ec);
    const auto s = engine.step();
    EXPECT_NEAR(s.layerTime(ec.pipelineStages),
                s.attnPhase(ec.pipelineStages) +
                    s.moePhase(ec.pipelineStages) + s.migrationOverhead,
                1e-15);
    // Overlap bounds: phase at least the max component, at most sum.
    EXPECT_GE(s.moePhase(ec.pipelineStages),
              std::max(s.moeTime, s.allToAll()));
    EXPECT_LE(s.moePhase(ec.pipelineStages),
              s.moeTime + s.allToAll() + 1e-15);
}

TEST(Engine, MorePipelineStagesTightenOverlap)
{
    const System sys = smallWsc();
    InferenceEngine engine(sys.mapping(), baseConfig());
    const auto s = engine.step();
    EXPECT_LE(s.moePhase(8), s.moePhase(2));
}

TEST(Engine, SkewedWorkloadIsImbalanced)
{
    const System sys = smallWsc();
    InferenceEngine engine(sys.mapping(), baseConfig());
    const auto s = engine.step();
    EXPECT_GT(s.imbalance, 0.3);
    EXPECT_GT(s.loadMax, s.loadAvg);
}

TEST(Engine, BalancedGatingIsFlat)
{
    const System sys = smallWsc();
    EngineConfig ec = baseConfig();
    ec.workload.mode = GatingMode::Balanced;
    ec.decodeTokensPerGroup = 1024;
    InferenceEngine engine(sys.mapping(), ec);
    const auto s = engine.step();
    EXPECT_LT(s.imbalance, 0.3);
}

TEST(Engine, PrefillHasMoreTokens)
{
    const System sys = smallWsc();
    EngineConfig ec = baseConfig();
    ec.schedule = SchedulingMode::PrefillOnly;
    InferenceEngine prefill(sys.mapping(), ec);
    ec.schedule = SchedulingMode::DecodeOnly;
    InferenceEngine decode(sys.mapping(), ec);
    EXPECT_GT(prefill.tokensPerGroup(), decode.tokensPerGroup());
}

TEST(Engine, HybridBetweenPrefillAndDecode)
{
    const System sys = smallWsc();
    EngineConfig ec = baseConfig();
    ec.schedule = SchedulingMode::Hybrid;
    InferenceEngine hybrid(sys.mapping(), ec);
    ec.schedule = SchedulingMode::PrefillOnly;
    InferenceEngine prefill(sys.mapping(), ec);
    ec.schedule = SchedulingMode::DecodeOnly;
    InferenceEngine decode(sys.mapping(), ec);
    EXPECT_GT(hybrid.tokensPerGroup(), decode.tokensPerGroup());
    EXPECT_LT(hybrid.tokensPerGroup(), prefill.tokensPerGroup());
}

TEST(Engine, InvasiveBalancerExposesMigrationOverhead)
{
    const System sys = smallWsc();
    EngineConfig ec = baseConfig();
    ec.balancer = BalancerKind::Greedy;
    ec.alpha = 0.5;
    ec.beta = 2;
    InferenceEngine engine(sys.mapping(), ec);
    double totalOverhead = 0.0;
    for (const auto &s : engine.run(30))
        totalOverhead += s.migrationOverhead;
    EXPECT_GT(totalOverhead, 0.0);
}

TEST(Engine, NonInvasiveNeverExposesOverhead)
{
    const System sys = smallWsc();
    EngineConfig ec = baseConfig();
    ec.balancer = BalancerKind::NonInvasive;
    ec.alpha = 0.5;
    InferenceEngine engine(sys.mapping(), ec);
    int planned = 0;
    for (const auto &s : engine.run(30)) {
        EXPECT_DOUBLE_EQ(s.migrationOverhead, 0.0);
        planned += s.migrationsPlanned;
    }
    EXPECT_GT(planned, 0);
}

TEST(Engine, NonInvasiveMigrationsEventuallyComplete)
{
    const System sys = smallWsc();
    EngineConfig ec = baseConfig();
    ec.balancer = BalancerKind::NonInvasive;
    ec.alpha = 0.5;
    InferenceEngine engine(sys.mapping(), ec);
    const auto trace = engine.run(50);
    int completed = 0;
    for (const auto &s : trace)
        completed += s.migrationsCompleted;
    EXPECT_GT(completed, 0);
    EXPECT_EQ(trace.back().migrationsPending, 0);
}

TEST(Engine, BalancingReducesLoadRatio)
{
    const System sys = smallWsc();
    EngineConfig ec = baseConfig();
    InferenceEngine none(sys.mapping(), ec);
    ec.balancer = BalancerKind::NonInvasive;
    ec.alpha = 0.5;
    InferenceEngine balanced(sys.mapping(), ec);

    auto tailRatio = [](const std::vector<IterationStats> &trace) {
        double ratio = 0.0;
        int n = 0;
        for (std::size_t i = trace.size() / 2; i < trace.size(); ++i) {
            ratio += trace[i].loadMax / trace[i].loadAvg;
            ++n;
        }
        return ratio / n;
    };
    const double noneRatio = tailRatio(none.run(40));
    const double balRatio = tailRatio(balanced.run(40));
    EXPECT_LT(balRatio, noneRatio);
}

TEST(Engine, EspModeSkipsAllToAll)
{
    const System sys = smallWsc();
    EngineConfig ec = baseConfig();
    ec.model = mixtral8x22b();
    ec.esp = true;
    InferenceEngine engine(sys.mapping(), ec);
    const auto s = engine.step();
    EXPECT_DOUBLE_EQ(s.dispatch, 0.0);
    EXPECT_DOUBLE_EQ(s.combine, 0.0);
    EXPECT_GT(s.epAllReduce, 0.0);
    EXPECT_GT(s.moeTime, 0.0);
}

TEST(Engine, WorksOnClusterPlatforms)
{
    SystemConfig sc;
    sc.platform = PlatformKind::DgxCluster;
    sc.dgxNodes = 2;
    sc.tp = 4;
    const System sys = System::make(sc);
    InferenceEngine engine(sys.mapping(), baseConfig());
    const auto s = engine.step();
    EXPECT_GT(s.allToAll(), 0.0);
    EXPECT_GT(s.moeTime, 0.0);
}

TEST(Engine, RetainAgTogglesDispatchCost)
{
    const System sys = smallWsc();
    EngineConfig ec = baseConfig();
    ec.workload.mode = GatingMode::Balanced;
    ec.retainAllGather = true;
    InferenceEngine withAg(sys.mapping(), ec);
    ec.retainAllGather = false;
    InferenceEngine withoutAg(sys.mapping(), ec);
    const auto a = withAg.step();
    const auto b = withoutAg.step();
    // Fig. 14(b): retaining AG doubles all-reduce but cuts all-to-all.
    EXPECT_GT(a.allReduce, b.allReduce);
    EXPECT_LT(a.allToAll(), b.allToAll());
}

TEST(Engine, ResetIsBitwiseIdenticalToFreshConstruction)
{
    // The contract the sweep runner's per-worker engine reuse stands
    // on: after reset(cfg), a used engine's timeline is bitwise equal
    // to a newly constructed engine's — across config changes
    // (balancer, workload mode, seed) and including the migration and
    // load-ratio paths that carry cross-iteration state.
    const System sys = smallWsc();

    EngineConfig first = baseConfig();
    first.balancer = BalancerKind::TopologyAware;
    first.workload.mode = GatingMode::MixedScenario;
    first.workload.seed = 7;
    first.alpha = 0.5;
    first.beta = 5;

    EngineConfig second = baseConfig();
    second.balancer = BalancerKind::NonInvasive;
    second.workload.mode = GatingMode::MixedScenario;
    second.workload.seed = 1234;
    second.alpha = 0.5;
    second.beta = 5;

    // Dirty an engine with a full run of the first config...
    InferenceEngine reused(sys.mapping(), first);
    reused.run(15);
    // ...then reset it to the second and compare against fresh.
    reused.reset(second);
    InferenceEngine fresh(sys.mapping(), second);
    const auto a = reused.run(15);
    const auto b = fresh.run(15);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].attnCompute, b[i].attnCompute) << "iter " << i;
        EXPECT_EQ(a[i].allReduce, b[i].allReduce) << "iter " << i;
        EXPECT_EQ(a[i].dispatch, b[i].dispatch) << "iter " << i;
        EXPECT_EQ(a[i].combine, b[i].combine) << "iter " << i;
        EXPECT_EQ(a[i].moeTime, b[i].moeTime) << "iter " << i;
        EXPECT_EQ(a[i].migrationOverhead, b[i].migrationOverhead)
            << "iter " << i;
        EXPECT_EQ(a[i].migrationsCompleted, b[i].migrationsCompleted)
            << "iter " << i;
        EXPECT_EQ(a[i].loadMax, b[i].loadMax) << "iter " << i;
        EXPECT_EQ(a[i].loadAvg, b[i].loadAvg) << "iter " << i;
    }

    // Resetting back to the first config also matches a fresh engine:
    // no residue survives two generations of reuse.
    reused.reset(first);
    InferenceEngine freshFirst(sys.mapping(), first);
    const auto c = reused.run(10);
    const auto d = freshFirst.run(10);
    for (std::size_t i = 0; i < c.size(); ++i) {
        EXPECT_EQ(c[i].moeTime, d[i].moeTime) << "iter " << i;
        EXPECT_EQ(c[i].migrationOverhead, d[i].migrationOverhead)
            << "iter " << i;
    }
}
