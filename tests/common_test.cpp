/**
 * @file
 * Unit tests for the common utilities: deterministic RNG, statistics,
 * and the ASCII table printer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/rng.hh"
#include "common/stats.hh"
#include "common/table.hh"
#include "common/units.hh"

using namespace moentwine;

// ---------------------------------------------------------------- Rng --

TEST(Rng, SameSeedSameStream)
{
    Rng a(123);
    Rng b(123);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDifferentStreams)
{
    Rng a(1);
    Rng b(2);
    int equal = 0;
    for (int i = 0; i < 100; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        const double u = rng.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(Rng, UniformRangeRespectsBounds)
{
    Rng rng(9);
    for (int i = 0; i < 1000; ++i) {
        const double u = rng.uniform(-3.0, 5.0);
        EXPECT_GE(u, -3.0);
        EXPECT_LT(u, 5.0);
    }
}

TEST(Rng, UniformMeanConverges)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowStaysBelow)
{
    Rng rng(13);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive)
{
    Rng rng(15);
    std::set<int64_t> seen;
    for (int i = 0; i < 2000; ++i) {
        const int64_t v = rng.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u); // all five values hit
}

TEST(Rng, NormalMomentsConverge)
{
    Rng rng(17);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double x = rng.normal();
        sum += x;
        sq += x * x;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Rng, NormalScaleAndShift)
{
    Rng rng(19);
    double sum = 0.0;
    const int n = 50000;
    for (int i = 0; i < n; ++i)
        sum += rng.normal(10.0, 2.0);
    EXPECT_NEAR(sum / n, 10.0, 0.1);
}

TEST(Rng, ExponentialMeanConverges)
{
    Rng rng(21);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.exponential(4.0);
    EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, WeightedIndexRespectsWeights)
{
    Rng rng(23);
    const std::vector<double> w{1.0, 3.0, 0.0, 6.0};
    std::vector<int> counts(4, 0);
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        ++counts[rng.weightedIndex(w)];
    EXPECT_EQ(counts[2], 0);
    EXPECT_NEAR(counts[0] / double(n), 0.1, 0.01);
    EXPECT_NEAR(counts[1] / double(n), 0.3, 0.01);
    EXPECT_NEAR(counts[3] / double(n), 0.6, 0.01);
}

TEST(Rng, PermutationIsValid)
{
    Rng rng(25);
    const auto p = rng.permutation(50);
    std::set<std::size_t> seen(p.begin(), p.end());
    EXPECT_EQ(seen.size(), 50u);
    EXPECT_EQ(*seen.begin(), 0u);
    EXPECT_EQ(*seen.rbegin(), 49u);
}

TEST(Rng, PermutationShuffles)
{
    Rng rng(27);
    const auto p = rng.permutation(100);
    int fixed = 0;
    for (std::size_t i = 0; i < p.size(); ++i)
        fixed += p[i] == i;
    EXPECT_LT(fixed, 10); // expected ~1 fixed point
}

TEST(Rng, ForkIsIndependentButDeterministic)
{
    Rng a(31);
    Rng b(31);
    Rng fa = a.fork();
    Rng fb = b.fork();
    for (int i = 0; i < 50; ++i)
        EXPECT_EQ(fa.next(), fb.next());
}

// ------------------------------------------------------------ Summary --

TEST(Summary, BasicMoments)
{
    Summary s;
    for (const double x : {1.0, 2.0, 3.0, 4.0})
        s.add(x);
    EXPECT_EQ(s.count(), 4u);
    EXPECT_DOUBLE_EQ(s.sum(), 10.0);
    EXPECT_DOUBLE_EQ(s.mean(), 2.5);
    EXPECT_DOUBLE_EQ(s.min(), 1.0);
    EXPECT_DOUBLE_EQ(s.max(), 4.0);
}

TEST(Summary, StddevOfConstantIsZero)
{
    Summary s;
    for (int i = 0; i < 10; ++i)
        s.add(5.0);
    EXPECT_DOUBLE_EQ(s.stddev(), 0.0);
}

TEST(Summary, StddevMatchesHandComputation)
{
    Summary s;
    for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        s.add(x);
    // Sample stddev of this classic set is ~2.138.
    EXPECT_NEAR(s.stddev(), 2.138, 0.001);
}

TEST(Summary, PercentileEndpoints)
{
    Summary s;
    for (int i = 1; i <= 100; ++i)
        s.add(i);
    EXPECT_DOUBLE_EQ(s.percentile(0), 1.0);
    EXPECT_DOUBLE_EQ(s.percentile(100), 100.0);
    EXPECT_NEAR(s.percentile(50), 50.5, 1e-9);
}

TEST(Summary, PercentileSingleSample)
{
    Summary s;
    s.add(42.0);
    EXPECT_DOUBLE_EQ(s.percentile(37.0), 42.0);
}

// ---------------------------------------------------------- Histogram --

TEST(Histogram, CountsAndClamping)
{
    Histogram h(0.0, 10.0, 5);
    h.add(0.5);   // bin 0
    h.add(9.5);   // bin 4
    h.add(-5.0);  // clamped into bin 0
    h.add(100.0); // clamped into bin 4
    EXPECT_EQ(h.total(), 4u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(4), 2u);
    EXPECT_EQ(h.binCount(2), 0u);
}

TEST(Histogram, BinLowEdges)
{
    Histogram h(0.0, 10.0, 5);
    EXPECT_DOUBLE_EQ(h.binLow(0), 0.0);
    EXPECT_DOUBLE_EQ(h.binLow(4), 8.0);
}

TEST(Histogram, RenderMentionsCounts)
{
    Histogram h(0.0, 1.0, 2);
    h.add(0.1);
    h.add(0.9);
    const std::string out = h.render();
    EXPECT_NE(out.find("(1)"), std::string::npos);
}

// ------------------------------------------------------------ helpers --

TEST(StatsHelpers, MeanMax)
{
    const std::vector<double> xs{1.0, 5.0, 3.0};
    EXPECT_DOUBLE_EQ(meanOf(xs), 3.0);
    EXPECT_DOUBLE_EQ(maxOf(xs), 5.0);
}

TEST(StatsHelpers, ImbalanceDegreeBalanced)
{
    EXPECT_DOUBLE_EQ(imbalanceDegree({2.0, 2.0, 2.0}), 0.0);
}

TEST(StatsHelpers, ImbalanceDegreeMatchesEq2)
{
    // max = 6, mean = 3 → (6-3)/3 = 1.
    EXPECT_DOUBLE_EQ(imbalanceDegree({6.0, 2.0, 1.0, 3.0}), 1.0);
}

// --------------------------------------------------------------- Table --

TEST(Table, RendersAlignedColumns)
{
    Table t({"name", "value"});
    t.addRow({"alpha", "1"});
    t.addRow({"b", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("alpha"), std::string::npos);
    EXPECT_NE(out.find("22"), std::string::npos);
    EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(Table, NumFormatsDecimals)
{
    EXPECT_EQ(Table::num(3.14159, 2), "3.14");
    EXPECT_EQ(Table::num(2.0, 0), "2");
}

TEST(Table, PctFormatsSigned)
{
    EXPECT_EQ(Table::pct(0.39), "+39.0%");
    EXPECT_EQ(Table::pct(-0.155), "-15.5%");
}

// --------------------------------------------------------------- units --

TEST(Units, Relationships)
{
    EXPECT_DOUBLE_EQ(units::TB, 1000.0 * units::GB);
    EXPECT_DOUBLE_EQ(units::GB, 1000.0 * units::MB);
    EXPECT_DOUBLE_EQ(units::GiB, 1024.0 * units::MiB);
    EXPECT_DOUBLE_EQ(units::MICRO, 1000.0 * units::NANO);
    EXPECT_DOUBLE_EQ(units::PFLOPS, 1000.0 * units::TFLOPS);
}
