/**
 * @file
 * Unit and property tests for the mesh topology: construction, XY
 * routing, wafer tiling, and link metadata.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "topology/mesh.hh"

using namespace moentwine;

TEST(Mesh, SingleWaferDimensions)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    EXPECT_EQ(mesh.numDevices(), 16);
    EXPECT_EQ(mesh.rows(), 4);
    EXPECT_EQ(mesh.cols(), 4);
    EXPECT_EQ(mesh.numWafers(), 1);
    EXPECT_EQ(mesh.devicesPerWafer(), 16);
}

TEST(Mesh, LinkCountMatchesGridFormula)
{
    // Directed links: 2 * (rows*(cols-1) + cols*(rows-1)).
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    EXPECT_EQ(mesh.links().size(), std::size_t(2 * (4 * 3 + 4 * 3)));
}

TEST(Mesh, CoordRoundTrip)
{
    const MeshTopology mesh = MeshTopology::singleWafer(6);
    for (DeviceId d = 0; d < mesh.numDevices(); ++d) {
        const Coord c = mesh.coordOf(d);
        EXPECT_EQ(mesh.deviceAt(c), d);
    }
}

TEST(Mesh, ManhattanMatchesCoordinates)
{
    const MeshTopology mesh = MeshTopology::singleWafer(5);
    EXPECT_EQ(mesh.manhattan(mesh.deviceAt(0, 0), mesh.deviceAt(4, 4)), 8);
    EXPECT_EQ(mesh.manhattan(mesh.deviceAt(2, 3), mesh.deviceAt(2, 3)), 0);
    EXPECT_EQ(mesh.manhattan(mesh.deviceAt(1, 0), mesh.deviceAt(0, 1)), 2);
}

TEST(Mesh, RouteIsEmptyForSelf)
{
    const MeshTopology mesh = MeshTopology::singleWafer(3);
    EXPECT_TRUE(mesh.route(4, 4).empty());
    EXPECT_EQ(mesh.hops(4, 4), 0);
}

TEST(Mesh, XyRoutingGoesColumnFirst)
{
    const MeshTopology mesh = MeshTopology::singleWafer(4);
    const auto path = mesh.route(mesh.deviceAt(0, 0), mesh.deviceAt(2, 2));
    ASSERT_EQ(path.size(), 4u);
    // First two hops move along the row (column changes).
    const Link &first = mesh.links()[std::size_t(path[0])];
    EXPECT_EQ(mesh.coordOf(first.dst).row, 0);
    EXPECT_EQ(mesh.coordOf(first.dst).col, 1);
}

TEST(Mesh, LinkBetweenAdjacency)
{
    const MeshTopology mesh = MeshTopology::singleWafer(3);
    EXPECT_GE(mesh.linkBetween(mesh.deviceAt(0, 0), mesh.deviceAt(0, 1)),
              0);
    EXPECT_GE(mesh.linkBetween(mesh.deviceAt(0, 1), mesh.deviceAt(0, 0)),
              0);
    EXPECT_EQ(mesh.linkBetween(mesh.deviceAt(0, 0), mesh.deviceAt(1, 1)),
              -1);
    EXPECT_EQ(mesh.linkBetween(mesh.deviceAt(0, 0), mesh.deviceAt(2, 2)),
              -1);
}

TEST(Mesh, PathLatencyAccumulates)
{
    MeshSpec spec;
    spec.meshRows = 4;
    spec.meshCols = 4;
    spec.linkLatency = 100e-9;
    const MeshTopology mesh(spec);
    EXPECT_DOUBLE_EQ(mesh.pathLatency(mesh.deviceAt(0, 0),
                                      mesh.deviceAt(0, 3)),
                     300e-9);
}

TEST(Mesh, PathBandwidthIsMinAlongRoute)
{
    const MeshTopology mesh = MeshTopology::waferRow(2, 4);
    // Crossing the wafer border passes a narrower link.
    const double bw = mesh.pathBandwidth(mesh.deviceAt(0, 0),
                                         mesh.deviceAt(0, 7));
    EXPECT_DOUBLE_EQ(bw, mesh.spec().crossBandwidth);
}

TEST(Mesh, MultiWaferStructure)
{
    const MeshTopology mesh = MeshTopology::waferRow(4, 4);
    EXPECT_EQ(mesh.numWafers(), 4);
    EXPECT_EQ(mesh.numDevices(), 64);
    EXPECT_EQ(mesh.rows(), 4);
    EXPECT_EQ(mesh.cols(), 16);
    EXPECT_EQ(mesh.devicesPerWafer(), 16);
}

TEST(Mesh, WaferOfAssignsTiles)
{
    const MeshTopology mesh = MeshTopology::waferRow(2, 4);
    EXPECT_EQ(mesh.waferOf(mesh.deviceAt(0, 0)), 0);
    EXPECT_EQ(mesh.waferOf(mesh.deviceAt(0, 3)), 0);
    EXPECT_EQ(mesh.waferOf(mesh.deviceAt(0, 4)), 1);
    EXPECT_EQ(mesh.waferOf(mesh.deviceAt(3, 7)), 1);
}

TEST(Mesh, WaferDevicesPartition)
{
    const MeshTopology mesh = MeshTopology::waferRow(3, 4);
    std::vector<int> seen(std::size_t(mesh.numDevices()), 0);
    for (int w = 0; w < mesh.numWafers(); ++w) {
        const auto devs = mesh.waferDevices(w);
        EXPECT_EQ(devs.size(), std::size_t(mesh.devicesPerWafer()));
        for (const DeviceId d : devs) {
            EXPECT_EQ(mesh.waferOf(d), w);
            ++seen[std::size_t(d)];
        }
    }
    for (const int count : seen)
        EXPECT_EQ(count, 1);
}

TEST(Mesh, CrossWaferLinksClassified)
{
    const MeshTopology mesh = MeshTopology::waferRow(2, 4);
    int cross = 0;
    for (std::size_t l = 0; l < mesh.links().size(); ++l)
        cross += mesh.isCrossWafer(static_cast<LinkId>(l));
    // 4 facing pairs on the border, 2 directions each.
    EXPECT_EQ(cross, 8);
}

TEST(Mesh, CrossWaferLinksUseCrossParameters)
{
    const MeshTopology mesh = MeshTopology::waferRow(2, 4);
    for (std::size_t l = 0; l < mesh.links().size(); ++l) {
        const Link &link = mesh.links()[l];
        if (mesh.isCrossWafer(static_cast<LinkId>(l))) {
            EXPECT_DOUBLE_EQ(link.bandwidth, mesh.spec().crossBandwidth);
            EXPECT_DOUBLE_EQ(link.latency, mesh.spec().crossLatency);
        } else {
            EXPECT_DOUBLE_EQ(link.bandwidth, mesh.spec().linkBandwidth);
            EXPECT_DOUBLE_EQ(link.latency, mesh.spec().linkLatency);
        }
    }
}

TEST(Mesh, NameFormats)
{
    EXPECT_EQ(MeshTopology::singleWafer(6).name(), "6x6 WSC");
    EXPECT_EQ(MeshTopology::waferRow(4, 8).name(), "4x(8x8) WSC");
}

// ------------------------------------------------- routing properties --

/** Property sweep over mesh shapes. */
class MeshRoutingProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int, int>>
{
  protected:
    MeshTopology
    makeMesh() const
    {
        const auto [rows, cols, wgr, wgc] = GetParam();
        MeshSpec spec;
        spec.meshRows = rows;
        spec.meshCols = cols;
        spec.waferGridRows = wgr;
        spec.waferGridCols = wgc;
        return MeshTopology(spec);
    }
};

TEST_P(MeshRoutingProperty, RouteLengthEqualsManhattan)
{
    const MeshTopology mesh = makeMesh();
    for (DeviceId a = 0; a < mesh.numDevices(); ++a)
        for (DeviceId b = 0; b < mesh.numDevices(); ++b)
            EXPECT_EQ(mesh.hops(a, b), mesh.manhattan(a, b));
}

TEST_P(MeshRoutingProperty, RouteIsConnected)
{
    const MeshTopology mesh = makeMesh();
    for (DeviceId a = 0; a < mesh.numDevices(); ++a) {
        for (DeviceId b = 0; b < mesh.numDevices(); ++b) {
            NodeId cur = a;
            for (const LinkId l : mesh.route(a, b)) {
                const Link &link = mesh.links()[std::size_t(l)];
                EXPECT_EQ(link.src, cur);
                cur = link.dst;
            }
            EXPECT_EQ(cur, b);
        }
    }
}

TEST_P(MeshRoutingProperty, HopsAreSymmetric)
{
    const MeshTopology mesh = makeMesh();
    for (DeviceId a = 0; a < mesh.numDevices(); ++a)
        for (DeviceId b = 0; b < mesh.numDevices(); ++b)
            EXPECT_EQ(mesh.hops(a, b), mesh.hops(b, a));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MeshRoutingProperty,
    ::testing::Values(std::make_tuple(2, 2, 1, 1),
                      std::make_tuple(3, 3, 1, 1),
                      std::make_tuple(4, 4, 1, 1),
                      std::make_tuple(4, 6, 1, 1),
                      std::make_tuple(6, 6, 1, 1),
                      std::make_tuple(4, 4, 1, 2),
                      std::make_tuple(4, 4, 2, 2),
                      std::make_tuple(3, 3, 1, 3)));
