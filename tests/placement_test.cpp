/**
 * @file
 * Tests for the expert placement (native + shadow replica) structure.
 */

#include <gtest/gtest.h>

#include "balancer/placement.hh"

using namespace moentwine;

TEST(Placement, RoundRobinManyExpertsPerDevice)
{
    // 8 experts on 4 devices: two natives each (E/D = 2).
    const ExpertPlacement p(8, 4, 1);
    for (DeviceId d = 0; d < 4; ++d) {
        EXPECT_EQ(p.expertsOn(d).size(), 2u);
        EXPECT_EQ(p.freeSlots(d), 1);
    }
    EXPECT_TRUE(p.hosts(0, 0));
    EXPECT_TRUE(p.hosts(0, 4));
    EXPECT_TRUE(p.hosts(3, 7));
}

TEST(Placement, RoundRobinMoreDevicesThanExperts)
{
    // E/D < 1: 4 experts on 8 devices → every expert has 2 replicas.
    const ExpertPlacement p(4, 8, 0);
    for (int e = 0; e < 4; ++e)
        EXPECT_EQ(p.numReplicas(e), 2);
    for (DeviceId d = 0; d < 8; ++d)
        EXPECT_EQ(p.expertsOn(d).size(), 1u);
}

TEST(Placement, EveryExpertHasAReplica)
{
    const ExpertPlacement p(256, 300, 1);
    for (int e = 0; e < 256; ++e)
        EXPECT_GE(p.numReplicas(e), 1);
}

TEST(Placement, AddReplicaUpdatesBothIndices)
{
    ExpertPlacement p(8, 4, 1);
    p.addReplica(0, 1);
    EXPECT_TRUE(p.hosts(1, 0));
    EXPECT_EQ(p.numReplicas(0), 2);
    EXPECT_EQ(p.freeSlots(1), 0);
}

TEST(Placement, RemoveReplicaRestoresSlot)
{
    ExpertPlacement p(8, 4, 1);
    p.addReplica(0, 1);
    p.removeReplica(0, 1);
    EXPECT_FALSE(p.hosts(1, 0));
    EXPECT_EQ(p.numReplicas(0), 1);
    EXPECT_EQ(p.freeSlots(1), 1);
}

TEST(Placement, ResetToNativeDropsShadows)
{
    ExpertPlacement p(8, 4, 2);
    p.addReplica(0, 1);
    p.addReplica(1, 2);
    p.resetToNative();
    EXPECT_FALSE(p.hosts(1, 0));
    EXPECT_FALSE(p.hosts(2, 1));
    for (int e = 0; e < 8; ++e)
        EXPECT_EQ(p.numReplicas(e), 1);
}

TEST(Placement, IsNativeDistinguishesShadow)
{
    ExpertPlacement p(8, 4, 1);
    EXPECT_TRUE(p.isNative(0, 0));
    p.addReplica(0, 1);
    EXPECT_FALSE(p.isNative(1, 0));
}

TEST(Placement, DeviceHeatsSplitAcrossReplicas)
{
    // 4 experts, 4 devices, loads {8, 0, 0, 0}. Replicating expert 0
    // onto device 1 halves device 0's heat.
    ExpertPlacement p(4, 4, 1);
    const std::vector<double> loads{8.0, 0.0, 0.0, 0.0};
    auto heats = p.deviceHeats(loads);
    EXPECT_DOUBLE_EQ(heats[0], 8.0);
    p.addReplica(0, 1);
    heats = p.deviceHeats(loads);
    EXPECT_DOUBLE_EQ(heats[0], 4.0);
    EXPECT_DOUBLE_EQ(heats[1], 4.0);
}

TEST(Placement, HeatsSumPreserved)
{
    // Replication never changes total load, only its spread.
    ExpertPlacement p(8, 4, 2);
    const std::vector<double> loads{5, 1, 2, 8, 3, 1, 4, 6};
    auto total = [&] {
        double s = 0.0;
        for (const double h : p.deviceHeats(loads))
            s += h;
        return s;
    };
    const double before = total();
    p.addReplica(3, 0);
    p.addReplica(3, 2);
    EXPECT_NEAR(total(), before, 1e-9);
}

TEST(Placement, ShadowSlotCapacity)
{
    ExpertPlacement p(4, 4, 2);
    p.addReplica(1, 0);
    p.addReplica(2, 0);
    EXPECT_EQ(p.freeSlots(0), 0);
}

TEST(Placement, ZeroShadowSlots)
{
    const ExpertPlacement p(4, 4, 0);
    for (DeviceId d = 0; d < 4; ++d)
        EXPECT_EQ(p.freeSlots(d), 0);
}

TEST(Placement, CopySemanticsIndependent)
{
    ExpertPlacement a(8, 4, 1);
    ExpertPlacement b = a;
    b.addReplica(0, 1);
    EXPECT_TRUE(b.hosts(1, 0));
    EXPECT_FALSE(a.hosts(1, 0));
}

// ------------------------------------- incremental heat tracking ----

namespace {

/** Tracked heats must match a from-scratch recompute (FP tolerance). */
void
expectHeatsMatchRecompute(const ExpertPlacement &p,
                          const std::vector<double> &loads)
{
    const auto fresh = p.deviceHeats(loads);
    const auto &tracked = p.heats();
    ASSERT_EQ(fresh.size(), tracked.size());
    for (std::size_t d = 0; d < fresh.size(); ++d)
        EXPECT_NEAR(tracked[d], fresh[d], 1e-9) << "device " << d;
}

} // namespace

TEST(PlacementHeatTracking, AddRemoveMaintainHeatsIncrementally)
{
    ExpertPlacement p(8, 4, 2);
    std::vector<double> loads{5, 1, 2, 8, 3, 1, 4, 6};
    p.setExpertLoads(loads);
    ASSERT_TRUE(p.tracksLoads());
    expectHeatsMatchRecompute(p, loads);

    p.addReplica(3, 0);
    expectHeatsMatchRecompute(p, loads);
    p.addReplica(3, 2);
    expectHeatsMatchRecompute(p, loads);
    p.addReplica(7, 1);
    expectHeatsMatchRecompute(p, loads);
    p.removeReplica(3, 0);
    expectHeatsMatchRecompute(p, loads);
    p.removeReplica(7, 1);
    expectHeatsMatchRecompute(p, loads);
}

TEST(PlacementHeatTracking, UpdateExpertLoadIsIncremental)
{
    ExpertPlacement p(8, 4, 2);
    std::vector<double> loads{5, 1, 2, 8, 3, 1, 4, 6};
    p.setExpertLoads(loads);
    p.addReplica(3, 0); // replicated expert: delta splits across hosts

    loads[3] = 2.0;
    p.updateExpertLoad(3, 2.0);
    expectHeatsMatchRecompute(p, loads);
    loads[0] = 11.5;
    p.updateExpertLoad(0, 11.5);
    expectHeatsMatchRecompute(p, loads);
}

TEST(PlacementHeatTracking, ResetToNativeRebuildsTrackedHeats)
{
    ExpertPlacement p(8, 4, 2);
    const std::vector<double> loads{5, 1, 2, 8, 3, 1, 4, 6};
    p.setExpertLoads(loads);
    p.addReplica(3, 0);
    p.addReplica(6, 1);
    p.resetToNative();
    expectHeatsMatchRecompute(p, loads);
}

TEST(PlacementHeatTracking, ClearStopsTracking)
{
    ExpertPlacement p(8, 4, 1);
    p.setExpertLoads({1, 2, 3, 4, 5, 6, 7, 8});
    p.clearExpertLoads();
    EXPECT_FALSE(p.tracksLoads());
    // Untracked mutations must not touch (absent) heat state.
    p.addReplica(0, 1);
    p.removeReplica(0, 1);
}
