/**
 * @file
 * Tests for the shared bench CLI helpers (bench/flags.hh): last-wins
 * value flags mirroring SweepRunner::jobsFromArgs, the boolean
 * --affinity flag being known to positionals(), and the strict
 * numeric parsing.
 */

#include <gtest/gtest.h>

#include "flags.hh"

using namespace moentwine;

TEST(BenchFlags, StringFlagLastOccurrenceWins)
{
    const char *argv[] = {"bench", "--trace", "a.json", "--trace=b.json"};
    EXPECT_EQ(benchflags::stringFlag(4, const_cast<char **>(argv),
                                     "--trace"),
              "b.json");
    const char *rev[] = {"bench", "--stats=x", "--stats", "y"};
    EXPECT_EQ(
        benchflags::stringFlag(4, const_cast<char **>(rev), "--stats"),
        "y");
    const char *absent[] = {"bench", "50"};
    EXPECT_EQ(benchflags::stringFlag(2, const_cast<char **>(absent),
                                     "--trace"),
              "");
}

TEST(BenchFlags, StringFlagSkipsItsValueWhenScanning)
{
    // `--trace --stats` must read "--stats" as --trace's value, not
    // silently treat the line as two valueless flags.
    const char *argv[] = {"bench", "--trace", "--stats"};
    EXPECT_EQ(benchflags::stringFlag(3, const_cast<char **>(argv),
                                     "--trace"),
              "--stats");
}

TEST(BenchFlags, PositionalsKnowAffinityTakesNoValue)
{
    const char *argv[] = {"bench", "--affinity", "120", "--jobs", "2"};
    const auto pos = benchflags::positionals(5, const_cast<char **>(argv));
    ASSERT_EQ(pos.size(), 1u);
    EXPECT_EQ(pos[0], "120"); // not swallowed as --affinity's value
}

TEST(BenchFlagsDeathTest, UnknownFlagIsFatal)
{
    const char *argv[] = {"bench", "--affinty"};
    EXPECT_EXIT(benchflags::positionals(2, const_cast<char **>(argv)),
                ::testing::ExitedWithCode(1), "unknown flag");
}

TEST(BenchFlagsDeathTest, DanglingValueFlagIsFatal)
{
    const char *argv[] = {"bench", "--stats"};
    EXPECT_EXIT(benchflags::stringFlag(2, const_cast<char **>(argv),
                                       "--stats"),
                ::testing::ExitedWithCode(1), "expects a value");
}

TEST(BenchFlags, PositiveIntRejectsGarbage)
{
    EXPECT_EQ(benchflags::positiveInt("128", "test"), 128);
    EXPECT_EXIT(benchflags::positiveInt("12x", "test"),
                ::testing::ExitedWithCode(1), "positive integer");
    EXPECT_EXIT(benchflags::positiveInt("-4", "test"),
                ::testing::ExitedWithCode(1), "positive integer");
}
